// Ablation B: encoding design choices — majority-vote tie policy (the paper
// breaks ties toward 1, citing Kleyko et al.) and the Hamming model variant
// (1-NN vs class prototypes), measured with leave-one-out on all datasets.
#include <cstdio>

#include "bench_common.hpp"
#include "core/hamming_classifier.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace {

double prototype_loo(const std::vector<hdc::hv::BitVector>& vectors,
                     const std::vector<int>& labels) {
  // Leave-one-out with class prototypes: rebuild both prototypes without the
  // held-out vector using the accumulator's remove().
  hdc::hv::BitAccumulator acc[2] = {
      hdc::hv::BitAccumulator(vectors.front().size()),
      hdc::hv::BitAccumulator(vectors.front().size())};
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    acc[static_cast<std::size_t>(labels[i])].add(vectors[i]);
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    auto& own = acc[static_cast<std::size_t>(labels[i])];
    own.remove(vectors[i]);
    const hdc::hv::BitVector p0 = acc[0].to_majority();
    const hdc::hv::BitVector p1 = acc[1].to_majority();
    const int predicted =
        vectors[i].hamming(p1) <= vectors[i].hamming(p0) ? 1 : 0;
    if (predicted == labels[i]) ++hits;
    own.add(vectors[i]);
  }
  return static_cast<double>(hits) / static_cast<double>(vectors.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("== Ablation: tie policy and classifier variant ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  const std::pair<const char*, const hdc::data::Dataset*> datasets[] = {
      {"Pima R", &setup.pima_r}, {"Pima M", &setup.pima_m}, {"Syhlet", &setup.sylhet}};

  hdc::util::Table table({"Dataset", "1-NN tie=1", "1-NN tie=0", "Prototype LOO"});
  for (const auto& [name, ds] : datasets) {
    std::vector<std::string> cells = {name};
    std::vector<hdc::hv::BitVector> tie_one_vectors;
    for (const auto tie : {hdc::hv::TiePolicy::kOne, hdc::hv::TiePolicy::kZero}) {
      hdc::core::ExperimentConfig config = setup.experiment;
      config.extractor.tie = tie;
      hdc::core::HdcFeatureExtractor extractor(config.extractor);
      extractor.fit(*ds);
      auto vectors = extractor.transform(*ds);
      const auto metrics =
          hdc::core::hamming_loo_metrics(vectors, ds->labels());
      cells.push_back(hdc::util::format_percent(metrics.accuracy, 1));
      if (tie == hdc::hv::TiePolicy::kOne) tie_one_vectors = std::move(vectors);
    }
    cells.push_back(
        hdc::util::format_percent(prototype_loo(tie_one_vectors, ds->labels()), 1));
    table.add_row(std::move(cells));
    std::fprintf(stderr, "[ablation-enc] done %s\n", name);
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("# Expected shape: tie policy is a minor effect (robustness); "
              "prototypes trade accuracy for O(1) inference.\n");
  return 0;
}
