// Table III reproduction: stratified 10-fold CV accuracy of the nine ML
// models on raw features vs hypervectors, for Pima R, Pima M and Sylhet.
#include <cstdio>

#include "bench_common.hpp"
#include "ml/zoo.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  std::printf("== Table III: 10-fold CV accuracy, features vs hypervectors ==\n");
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);

  const std::pair<const char*, const hdc::data::Dataset*> datasets[] = {
      {"Pima R", &setup.pima_r}, {"Pima M", &setup.pima_m}, {"Syhlet", &setup.sylhet}};

  hdc::util::Table table({"Model", "PimaR feat", "PimaR HV", "PimaM feat",
                          "PimaM HV", "Syhlet feat", "Syhlet HV"});

  double gain_sum = 0.0;
  std::size_t gain_count = 0;
  for (const auto& entry : hdc::ml::paper_model_zoo(setup.experiment.model_budget)) {
    std::vector<std::string> cells = {entry.name};
    for (const auto& [ds_name, ds] : datasets) {
      for (const auto mode : {hdc::core::InputMode::kRawFeatures,
                              hdc::core::InputMode::kHypervectors}) {
        std::fprintf(stderr, "[table3] %s / %s / %s\n", entry.name.c_str(), ds_name,
                     hdc::core::to_string(mode).c_str());
        const auto cv = hdc::core::kfold_cv_accuracy(*ds, entry.name, mode,
                                                     setup.kfold, setup.experiment);
        cells.push_back(hdc::util::format_percent(cv.mean_accuracy, 1));
        if (mode == hdc::core::InputMode::kHypervectors) {
          // gain = HV - features for the same dataset (previous cell).
          const double feat = std::stod(cells[cells.size() - 2]);
          const double hv = std::stod(cells.back());
          gain_sum += hv - feat;
          ++gain_count;
        }
      }
    }
    table.add_row(std::move(cells));
  }
  std::fputs(table.render().c_str(), stdout);
  std::printf("# Mean hypervector gain across models/datasets: %+.2f points "
              "(paper: +1.3)\n",
              gain_sum / static_cast<double>(gain_count));
  std::printf(
      "# Expected shape: SGD/LogReg/SVC gain most on Pima; tree ensembles "
      "roughly flat or slightly down; Sylhet saturated >= 90%%.\n");
  return 0;
}
