// Sharded-training bench: out-of-core streaming encode + shard-mergeable
// model fits at synthetic-cohort scale. Emits BENCH_shard.json.
//
// Protocol:
//   1. Identity gate: encode a 100k-row cohort (reduced under --fast)
//      through transform_bits_chunked at shard counts {1, 4, 8}. The three
//      sharded encodes must agree fingerprint-for-fingerprint, and every
//      model of the paper's zoo (plus Naive Bayes) fitted through
//      fit_shards must produce byte-identical save_state() and identical
//      held-out predictions at every shard count. Any mismatch exits
//      non-zero — this is the ROADMAP's 1-shard vs N-shard bit-identity
//      gate.
//   2. Streaming gate: a 1M-row cohort (reduced under --fast) trained
//      through core::EncodingShardSource, which encodes one shard at a
//      time from a chunk source that synthesizes rows on demand. The
//      measured peak resident footprint (dense chunk + packed shard) must
//      stay within the byte budget implied by --shard-rows, and the bench
//      reports single-pass training throughput in rows/s.
//   3. Speedup: streamed vs fully-materialized wall time for the same fit,
//      reported only on multi-core hosts; single-core boxes emit
//      speedup_skipped_reason instead (the throughput number is still
//      measured).
//
// Model iteration counts here are bench-owned reductions: the gate is
// equality across shard counts, not accuracy, so cutting rounds/iters only
// shrinks wall time, never the strength of the identity check.
//
// Flags (bench_common): --dim N, --seed S, --fast; plus --shard-rows N
// (streaming shard size, default 65536, fast 4096), --reps R (accepted for
// smoke-harness compatibility; unused) and --out PATH (default
// BENCH_shard.json).
#include <cstdio>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/extractor.hpp"
#include "core/shard_source.hpp"
#include "data/chunked.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/sharded_bits.hpp"
#include "ml/forest.hpp"
#include "ml/hist_gbdt.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/ordered_gbdt.hpp"
#include "ml/gbdt.hpp"
#include "ml/sgd.hpp"
#include "ml/sharded.hpp"
#include "ml/svm.hpp"
#include "ml/tree.hpp"
#include "obs/metrics.hpp"
#include "parallel/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

namespace {

using hdc::util::Timer;

std::string state_of(const hdc::ml::Classifier& model) {
  std::ostringstream out;
  model.save_state(out);
  return out.str();
}

struct ModelSpec {
  std::string name;
  std::function<std::unique_ptr<hdc::ml::Classifier>()> make;
};

/// The nine zoo models plus Naive Bayes, with bench-owned reduced
/// iteration counts (see the file comment).
std::vector<ModelSpec> identity_zoo() {
  using namespace hdc::ml;
  std::vector<ModelSpec> zoo;
  zoo.push_back({"Random Forest", [] {
    ForestConfig config;
    config.n_trees = 10;
    config.tree.max_depth = 8;
    return std::make_unique<RandomForest>(config);
  }});
  zoo.push_back({"KNN", [] { return std::make_unique<KnnClassifier>(); }});
  zoo.push_back({"Decision Tree", [] {
    TreeConfig config;
    config.max_depth = 6;
    return std::make_unique<DecisionTree>(config);
  }});
  zoo.push_back({"XGBoost", [] {
    GbdtConfig config;
    config.n_rounds = 10;
    config.max_depth = 4;
    return std::make_unique<GbdtClassifier>(config);
  }});
  zoo.push_back({"CatBoost", [] {
    OrderedGbdtConfig config;
    config.n_rounds = 10;
    config.depth = 4;
    return std::make_unique<OrderedGbdtClassifier>(config);
  }});
  zoo.push_back({"SGD", [] {
    SgdConfig config;
    config.epochs = 3;
    return std::make_unique<SgdClassifier>(config);
  }});
  zoo.push_back({"Logistic Regression", [] {
    LogisticConfig config;
    config.max_iter = 30;
    return std::make_unique<LogisticRegression>(config);
  }});
  zoo.push_back({"SVC", [] { return std::make_unique<SvcClassifier>(); }});
  zoo.push_back({"LGBM", [] {
    HistGbdtConfig config;
    config.n_rounds = 10;
    config.num_leaves = 8;
    return std::make_unique<HistGbdtClassifier>(config);
  }});
  zoo.push_back({"Naive Bayes",
                 [] { return std::make_unique<NaiveBayesClassifier>(); }});
  return zoo;
}

struct IdentityResult {
  std::size_t rows = 0;
  std::size_t models_checked = 0;
  bool fingerprints_ok = false;
  bool identity_ok = false;
  double seconds = 0.0;
};

IdentityResult run_identity(std::size_t rows, std::size_t n_test,
                            const hdc::core::ExtractorConfig& config,
                            std::uint64_t seed,
                            const std::vector<std::size_t>& shard_counts) {
  IdentityResult result;
  result.rows = rows;
  Timer total;

  // Train and held-out rows come from disjoint ranges of one deterministic
  // cohort stream (same device as bench_ann).
  const hdc::data::Dataset cohort =
      hdc::data::make_synthetic_cohort(rows + n_test, seed);
  std::vector<std::size_t> train_idx(rows);
  std::vector<std::size_t> test_idx(n_test);
  for (std::size_t i = 0; i < rows; ++i) train_idx[i] = i;
  for (std::size_t i = 0; i < n_test; ++i) test_idx[i] = rows + i;
  const hdc::data::Dataset train_ds = cohort.subset(train_idx);
  const hdc::data::Dataset test_ds = cohort.subset(test_idx);

  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(train_ds);
  const hdc::hv::BitMatrix test_bits = extractor.transform_bits(test_ds);

  // One sharded encode per shard count; the fingerprints must agree (the
  // chunking-invariance half of the gate).
  std::vector<hdc::hv::ShardedBitMatrix> sharded;
  sharded.reserve(shard_counts.size());
  for (const std::size_t count : shard_counts) {
    const std::size_t shard_rows = (rows + count - 1) / count;
    sharded.push_back(extractor.transform_bits_chunked(train_ds, shard_rows));
  }
  result.fingerprints_ok = true;
  for (const hdc::hv::ShardedBitMatrix& bits : sharded) {
    if (bits.fingerprint() != sharded.front().fingerprint()) {
      result.fingerprints_ok = false;
      std::fprintf(stderr, "FATAL: sharded encode fingerprints diverge\n");
    }
  }

  result.identity_ok = true;
  for (const ModelSpec& spec : identity_zoo()) {
    std::string base_state;
    std::vector<int> base_pred;
    bool model_ok = true;
    for (std::size_t v = 0; v < sharded.size(); ++v) {
      const std::unique_ptr<hdc::ml::Classifier> model = spec.make();
      const hdc::ml::MaterializedShardSource src(sharded[v], train_ds.labels());
      model->fit_shards(src);
      std::string state = state_of(*model);
      std::vector<int> pred = model->predict_all_bits(test_bits);
      if (v == 0) {
        base_state = std::move(state);
        base_pred = std::move(pred);
      } else if (state != base_state || pred != base_pred) {
        result.identity_ok = false;
        model_ok = false;
        std::fprintf(stderr,
                     "FATAL: %s differs between %zu and %zu shards (%s)\n",
                     spec.name.c_str(), sharded.front().num_shards(),
                     sharded[v].num_shards(),
                     state != base_state ? "state" : "predictions");
      }
    }
    ++result.models_checked;
    std::printf("# identity: %-19s shards={1,4,8} %s\n", spec.name.c_str(),
                model_ok ? "ok" : "FAILED");
  }
  result.seconds = total.seconds();
  return result;
}

struct StreamResult {
  std::size_t rows = 0;
  std::size_t shard_rows = 0;
  std::size_t num_shards = 0;
  std::size_t peak_resident_bytes = 0;
  std::size_t resident_budget_bytes = 0;
  bool peak_within_budget = false;
  double fit_seconds = 0.0;       // single-pass Naive Bayes fit (encode-bound)
  double throughput_rows_per_s = 0.0;
  double speedup_stream_vs_inmem = 0.0;  // 0 = not measured
};

/// Byte budget for one resident shard of `shard_rows` rows: the dense chunk
/// feeding the encoder plus the packed shard it produces — the same
/// accounting EncodingShardSource measures.
std::size_t shard_budget_bytes(std::size_t shard_rows, std::size_t cols,
                               std::size_t dim) {
  const std::size_t words_per_column = (shard_rows + 63) / 64;
  const std::size_t words_per_row = (dim + 63) / 64;
  const std::size_t packed =
      8 * (words_per_column * dim + shard_rows * words_per_row +
           words_per_column);
  const std::size_t chunk = shard_rows * (cols * 8 + 4);
  return packed + chunk;
}

StreamResult run_stream(std::size_t rows, std::size_t shard_rows,
                        hdc::core::ExtractorConfig config, std::uint64_t seed,
                        bool measure_speedup) {
  StreamResult result;
  result.rows = rows;
  result.shard_rows = shard_rows;

  // Rows are synthesized on demand: no dataset ever exists in full.
  const hdc::data::SyntheticCohortChunks chunks(rows, seed);
  result.resident_budget_bytes =
      shard_budget_bytes(shard_rows, chunks.n_cols(), config.dimensions);

  // Column ranges from a materialized prefix; the identity contract is not
  // at stake here (the cohort generator's ranges are stationary), only the
  // out-of-core footprint and throughput are.
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(chunks.chunk(0, std::min<std::size_t>(rows, 8192)));

  const hdc::core::EncodingShardSource src(chunks, extractor, shard_rows);
  result.num_shards = src.num_shards();

  {
    hdc::ml::NaiveBayesClassifier nb;
    hdc::ml::Classifier& model = nb;
    Timer t;
    model.fit_shards(src);
    result.fit_seconds = t.seconds();
  }
  {
    hdc::ml::SgdConfig sgd_config;
    sgd_config.epochs = 1;
    hdc::ml::SgdClassifier sgd(sgd_config);
    hdc::ml::Classifier& model = sgd;
    model.fit_shards(src);
  }
  {
    hdc::ml::LogisticConfig logistic_config;
    logistic_config.max_iter = 2;
    hdc::ml::LogisticRegression logistic(logistic_config);
    hdc::ml::Classifier& model = logistic;
    model.fit_shards(src);
  }

  result.peak_resident_bytes = src.peak_resident_bytes();
  result.peak_within_budget =
      result.peak_resident_bytes <= result.resident_budget_bytes;
  result.throughput_rows_per_s =
      result.fit_seconds > 0.0
          ? static_cast<double>(rows) / result.fit_seconds
          : 0.0;

  if (measure_speedup) {
    // Reference: the same Naive Bayes fit with everything materialized.
    const hdc::data::Dataset full = chunks.chunk(0, rows);
    const hdc::hv::BitMatrix bits = extractor.transform_bits(full);
    hdc::ml::NaiveBayesClassifier nb;
    Timer t;
    nb.fit_bits(bits, full.labels());
    const double inmem = t.seconds() + 0.0;  // encode excluded: lower bound
    result.speedup_stream_vs_inmem =
        result.fit_seconds > 0.0 ? inmem / result.fit_seconds : 0.0;
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const hdc::bench::BenchSetup setup = hdc::bench::make_setup(argc, argv);
  const hdc::util::Cli cli(argc, argv);
  const bool fast = cli.has_flag("--fast");
  const std::string out_path = cli.get_string("--out", "BENCH_shard.json");

  // Sharded fits count their histogram merges; gauges record the footprint.
  hdc::obs::set_enabled(true);

  const std::size_t rows_identity = fast ? 2000 : 100000;
  const std::size_t n_test = fast ? 400 : 1000;
  const std::size_t rows_stream = fast ? 20000 : 1000000;
  const std::size_t shard_rows = static_cast<std::size_t>(
      cli.get_int("--shard-rows", fast ? 4096 : 65536));
  const std::vector<std::size_t> shard_counts = {1, 4, 8};

  // Identity at a narrower width than the default 10000 bits keeps the
  // 100k-row zoo sweep in seconds; the merge arithmetic being gated is
  // width-independent.
  hdc::core::ExtractorConfig identity_config = setup.experiment.extractor;
  identity_config.dimensions = fast ? 128 : 256;
  const IdentityResult identity = run_identity(
      rows_identity, n_test, identity_config, setup.experiment.seed + 5,
      shard_counts);
  std::printf("# identity: %zu models over %zu rows in %.1fs\n",
              identity.models_checked, identity.rows, identity.seconds);

  hdc::core::ExtractorConfig stream_config = setup.experiment.extractor;
  stream_config.dimensions = 64;
  const bool multi_core = hdc::parallel::hardware_threads() > 1;
  const StreamResult stream = run_stream(rows_stream, shard_rows,
                                         stream_config,
                                         setup.experiment.seed + 9, multi_core);
  std::printf("# stream: %zu rows, %zu shards of <= %zu rows, peak %.2f MiB "
              "(budget %.2f MiB), %.0f rows/s\n",
              stream.rows, stream.num_shards, stream.shard_rows,
              static_cast<double>(stream.peak_resident_bytes) / 1048576.0,
              static_cast<double>(stream.resident_budget_bytes) / 1048576.0,
              stream.throughput_rows_per_s);

  const hdc::obs::MetricsSnapshot snapshot = hdc::obs::snapshot();
  const std::uint64_t hist_merge_ops =
      snapshot.counter_value("ml.hist_merge_ops");
  hdc::obs::set_enabled(false);

  const bool shard_identity = identity.identity_ok && identity.fingerprints_ok;
  int exit_code = 0;
  if (!shard_identity) {
    std::fprintf(stderr, "FATAL: 1-shard vs N-shard identity gate failed\n");
    exit_code = 1;
  }
  if (!stream.peak_within_budget) {
    std::fprintf(stderr,
                 "FATAL: peak resident %zu bytes exceeds the %zu budget\n",
                 stream.peak_resident_bytes, stream.resident_budget_bytes);
    exit_code = 1;
  }

  std::string speedup_json;
  if (multi_core) {
    char buffer[96];
    std::snprintf(buffer, sizeof buffer,
                  "  \"speedup_valid\": true,\n"
                  "  \"speedup_stream_vs_inmem\": %.3f,\n",
                  stream.speedup_stream_vs_inmem);
    speedup_json = buffer;
  } else {
    speedup_json = "  \"speedup_skipped_reason\": \"hardware_threads==1\",\n";
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
    return 1;
  }
  hdc::core::ExperimentConfig manifest_config = setup.experiment;
  manifest_config.extractor = identity_config;
  manifest_config.max_resident_rows = shard_rows;
  std::fprintf(out,
               "{\n"
               "  \"bench\": \"bench_shard\",\n"
               "  \"rows_identity\": %zu,\n"
               "  \"rows_stream\": %zu,\n"
               "  \"shard_counts\": [1, 4, 8],\n"
               "  \"models_checked\": %zu,\n"
               "  \"shard_identity\": %s,\n"
               "  \"encode_fingerprints_ok\": %s,\n"
               "  \"shard_rows\": %zu,\n"
               "  \"num_shards\": %zu,\n"
               "  \"peak_resident_bytes\": %zu,\n"
               "  \"resident_budget_bytes\": %zu,\n"
               "  \"peak_within_budget\": %s,\n"
               "  \"throughput_rows_per_s\": %.0f,\n"
               "%s"
               "  \"hist_merge_ops\": %llu,\n"
               "  \"manifest\": %s\n"
               "}\n",
               identity.rows, stream.rows, identity.models_checked,
               shard_identity ? "true" : "false",
               identity.fingerprints_ok ? "true" : "false", stream.shard_rows,
               stream.num_shards, stream.peak_resident_bytes,
               stream.resident_budget_bytes,
               stream.peak_within_budget ? "true" : "false",
               stream.throughput_rows_per_s, speedup_json.c_str(),
               static_cast<unsigned long long>(hist_merge_ops),
               hdc::bench::manifest_json(setup.pima_m, "pima_m_synthetic",
                                         manifest_config)
                   .c_str());
  std::fclose(out);
  std::printf("# wrote %s\n", out_path.c_str());
  return exit_code;
}
