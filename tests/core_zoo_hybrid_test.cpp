// Integration sweep: every model family of the paper's Table III runs
// through the full hybrid pipeline (encode -> fit -> held-out evaluate) on a
// reduced Sylhet instance. This is the cross-module path the benches rely
// on, checked per model.
#include <gtest/gtest.h>

#include "core/hybrid.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "ml/zoo.hpp"

namespace hdc::core {
namespace {

class HybridZooSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(HybridZooSweep, BeatsMajorityOnHeldOutSylhet) {
  const data::Dataset dataset = data::make_sylhet({80, 120, 41});
  const auto split = data::stratified_split(dataset.labels(), 0.25, 42);
  const data::Dataset train = dataset.subset(split.train);
  const data::Dataset test = dataset.subset(split.test);

  ExtractorConfig encoding;
  encoding.dimensions = 1000;
  HybridModel model(encoding, ml::make_model(GetParam(), 0.2));
  model.fit(train);

  const eval::BinaryMetrics m = model.evaluate(test);
  // Majority class of this split is 60%. SGD's deliberately tiny base step
  // (calibrated for the full-size benches; see ml/sgd.hpp) needs more than
  // this test's 150 rows x 20 epochs to move past majority, so it only has
  // to reach the majority line here.
  const double floor = GetParam() == "SGD" ? 0.58 : 0.66;
  EXPECT_GT(m.accuracy, floor) << GetParam();
  EXPECT_GT(m.f1, floor - 0.06) << GetParam();
  // And the confusion matrix must cover the whole test set.
  EXPECT_EQ(m.confusion.total(), test.n_rows()) << GetParam();
}

TEST_P(HybridZooSweep, ProbabilitiesValidThroughPipeline) {
  const data::Dataset dataset = data::make_sylhet({30, 45, 43});
  ExtractorConfig encoding;
  encoding.dimensions = 1000;
  HybridModel model(encoding, ml::make_model(GetParam(), 0.2));
  model.fit(dataset);
  for (std::size_t i = 0; i < 10; ++i) {
    const double p = model.predict_proba(dataset.row(i));
    EXPECT_GE(p, 0.0) << GetParam();
    EXPECT_LE(p, 1.0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(PaperModels, HybridZooSweep,
                         ::testing::Values("Random Forest", "KNN", "Decision Tree",
                                           "XGBoost", "CatBoost", "SGD",
                                           "Logistic Regression", "SVC", "LGBM",
                                           "Naive Bayes"));

}  // namespace
}  // namespace hdc::core
