#include "core/extractor.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "data/synthetic.hpp"

namespace hdc::core {
namespace {

data::Dataset mixed_dataset() {
  data::Dataset ds({{"age", data::ColumnKind::kContinuous},
                    {"flag", data::ColumnKind::kBinary},
                    {"bmi", data::ColumnKind::kContinuous}});
  ds.add_row(std::vector<double>{25.0, 0.0, 20.0}, 0);
  ds.add_row(std::vector<double>{35.0, 1.0, 30.0}, 1);
  ds.add_row(std::vector<double>{45.0, 0.0, 25.0}, 0);
  ds.add_row(std::vector<double>{55.0, 1.0, 40.0}, 1);
  return ds;
}

ExtractorConfig small_config() {
  ExtractorConfig config;
  config.dimensions = 2000;
  return config;
}

TEST(Extractor, DefaultDimensionsMatchPaper) {
  const HdcFeatureExtractor extractor;
  EXPECT_EQ(extractor.dimensions(), 10000u);
}

TEST(Extractor, FitTransformShapes) {
  HdcFeatureExtractor extractor(small_config());
  const data::Dataset ds = mixed_dataset();
  extractor.fit(ds);
  ASSERT_TRUE(extractor.fitted());
  const auto vectors = extractor.transform(ds);
  ASSERT_EQ(vectors.size(), 4u);
  for (const auto& v : vectors) EXPECT_EQ(v.size(), 2000u);
}

TEST(Extractor, DeterministicAcrossInstances) {
  const data::Dataset ds = mixed_dataset();
  HdcFeatureExtractor a(small_config());
  HdcFeatureExtractor b(small_config());
  a.fit(ds);
  b.fit(ds);
  EXPECT_EQ(a.transform(ds), b.transform(ds));
}

TEST(Extractor, SeedChangesEncoding) {
  const data::Dataset ds = mixed_dataset();
  ExtractorConfig other = small_config();
  other.seed = 12345;
  HdcFeatureExtractor a(small_config());
  HdcFeatureExtractor b(other);
  a.fit(ds);
  b.fit(ds);
  EXPECT_NE(a.transform(ds), b.transform(ds));
}

TEST(Extractor, SimilarPatientsCloserThanDissimilar) {
  const data::Dataset ds = mixed_dataset();
  HdcFeatureExtractor extractor(small_config());
  extractor.fit(ds);
  const std::vector<double> base = {30.0, 1.0, 28.0};
  const std::vector<double> near = {32.0, 1.0, 29.0};
  const std::vector<double> far = {55.0, 0.0, 40.0};
  const auto vb = extractor.encode_row(base);
  EXPECT_LT(vb.hamming(extractor.encode_row(near)),
            vb.hamming(extractor.encode_row(far)));
}

TEST(Extractor, BinaryColumnUsesTwoDistinctVectors) {
  const data::Dataset ds = mixed_dataset();
  HdcFeatureExtractor extractor(small_config());
  extractor.fit(ds);
  // Same row except the binary flag: distance must be positive but bounded
  // by the single feature's contribution.
  const std::vector<double> a = {40.0, 0.0, 30.0};
  const std::vector<double> b = {40.0, 1.0, 30.0};
  const std::size_t d = extractor.encode_row(a).hamming(extractor.encode_row(b));
  EXPECT_GT(d, 0u);
  EXPECT_LT(d, 2000u / 2);
}

TEST(Extractor, TransformToMatrixIsZeroOne) {
  const data::Dataset ds = mixed_dataset();
  HdcFeatureExtractor extractor(small_config());
  extractor.fit(ds);
  const auto X = extractor.transform_to_matrix(ds);
  ASSERT_EQ(X.size(), ds.n_rows());
  ASSERT_EQ(X.front().size(), 2000u);
  for (const auto& row : X) {
    for (const double v : row) EXPECT_TRUE(v == 0.0 || v == 1.0);
  }
}

TEST(Extractor, MissingAsMinSubstitution) {
  const data::Dataset ds = mixed_dataset();
  HdcFeatureExtractor extractor(small_config());
  extractor.fit(ds);
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> missing_row = {kNaN, 1.0, 30.0};
  const std::vector<double> min_row = {25.0, 1.0, 30.0};  // age min = 25
  EXPECT_EQ(extractor.encode_row(missing_row), extractor.encode_row(min_row));
}

TEST(Extractor, MissingRejectedWhenDisabled) {
  ExtractorConfig config = small_config();
  config.missing_as_min = false;
  HdcFeatureExtractor extractor(config);
  extractor.fit(mixed_dataset());
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  const std::vector<double> missing_row = {kNaN, 1.0, 30.0};
  EXPECT_THROW((void)extractor.encode_row(missing_row), std::invalid_argument);
}

TEST(Extractor, UnfittedThrows) {
  const HdcFeatureExtractor extractor(small_config());
  const std::vector<double> row = {1.0};
  EXPECT_THROW((void)extractor.encode_row(row), std::logic_error);
  EXPECT_THROW((void)extractor.record_encoder(), std::logic_error);
}

TEST(Extractor, ArityMismatchThrows) {
  HdcFeatureExtractor extractor(small_config());
  extractor.fit(mixed_dataset());
  const std::vector<double> bad = {1.0};
  EXPECT_THROW((void)extractor.encode_row(bad), std::invalid_argument);
}

TEST(Extractor, RejectsBadDimensions) {
  ExtractorConfig config;
  config.dimensions = 0;
  EXPECT_THROW(HdcFeatureExtractor{config}, std::invalid_argument);
  config.dimensions = 1001;  // not a multiple of 4
  EXPECT_THROW(HdcFeatureExtractor{config}, std::invalid_argument);
}

TEST(Extractor, EmptyFitThrows) {
  HdcFeatureExtractor extractor(small_config());
  const data::Dataset empty({{"x", data::ColumnKind::kContinuous}});
  EXPECT_THROW(extractor.fit(empty), std::invalid_argument);
}

TEST(Extractor, WorksOnSylhetScale) {
  const data::Dataset ds = data::make_sylhet({40, 60, 7});
  HdcFeatureExtractor extractor(small_config());
  extractor.fit(ds);
  const auto vectors = extractor.transform(ds);
  EXPECT_EQ(vectors.size(), 100u);
  // Patient hypervectors keep roughly balanced density after majority voting.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(vectors[i].density(), 0.5, 0.15);
  }
}

}  // namespace
}  // namespace hdc::core
