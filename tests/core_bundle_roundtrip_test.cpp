// Round-trip tests for the bundle format: every zoo model, the Sequential
// NN, both scalers, the online classifier, and full multi-section bundles
// are fitted on golden synthetic seeds, saved, loaded, and compared with
// EXPECT_EQ — on re-serialized state (the save/load/save string oracle: any
// lost or mutated field shows up as a byte diff) and on predict_all_bits
// outputs. The packed-ML toggle is exercised both ways, and the suite runs
// under the mlkernel label configs (sanitizers + HDC_DISABLE_SIMD).
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle.hpp"
#include "core/experiment.hpp"
#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "core/online.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/search.hpp"
#include "ml/packed.hpp"
#include "ml/zoo.hpp"
#include "nn/sequential.hpp"

namespace {

using hdc::core::HdcFeatureExtractor;
using hdc::core::load_bundle;
using hdc::core::ModelBundle;
using hdc::core::save_bundle;

/// All names ml::make_model accepts: the nine zoo models of Table III plus
/// the Naive Bayes baseline.
const std::vector<std::string> kModelNames = {
    "Random Forest", "KNN",  "Decision Tree",       "XGBoost", "CatBoost",
    "SGD",           "SVC",  "Logistic Regression", "LGBM",    "Naive Bayes"};

constexpr double kBudget = 0.15;  // shrink the boosted models' round counts

/// Restores the HDC_ML_PACKED-derived default on scope exit.
class PackedGuard {
 public:
  PackedGuard() = default;
  ~PackedGuard() { hdc::ml::reset_packed_enabled(); }
};

struct Golden {
  hdc::data::Dataset ds;
  HdcFeatureExtractor extractor;
  hdc::hv::BitMatrix bits;
  std::vector<hdc::hv::BitVector> vectors;
};

Golden make_golden(bool pima) {
  Golden g;
  g.ds = pima ? hdc::data::impute_class_median(
                    hdc::data::make_pima({60, 40, true, 0.05, 4}))
              : hdc::data::make_sylhet({30, 40, 3});
  hdc::core::ExtractorConfig config;
  config.dimensions = 512;
  config.seed = 99;
  g.extractor = HdcFeatureExtractor(config);
  g.extractor.fit(g.ds);
  g.bits = g.extractor.transform_bits(g.ds);
  g.vectors = g.extractor.transform(g.ds);
  return g;
}

/// Copyable stand-in for the golden extractor (the extractor itself owns a
/// unique_ptr encoder): rebuild from the learned column encodings.
HdcFeatureExtractor clone_extractor(const HdcFeatureExtractor& source) {
  HdcFeatureExtractor extractor(source.config());
  extractor.fit_from_columns(source.column_encodings());
  return extractor;
}

const Golden& golden_pima() {
  static const Golden g = make_golden(true);
  return g;
}

const Golden& golden_sylhet() {
  static const Golden g = make_golden(false);
  return g;
}

std::string save_to_string(const hdc::ml::Classifier& model) {
  std::ostringstream out;
  model.save_state(out);
  return out.str();
}

/// Fit `name` on the golden seed, round-trip it, and require (1) identical
/// re-serialized state and (2) identical hard predictions on the training
/// bits — the strongest equality the public interface can express.
void expect_model_round_trips(const std::string& name, const Golden& g) {
  auto original = hdc::ml::make_model(name, kBudget);
  original->fit_bits(g.bits, g.ds.labels());
  const std::string saved = save_to_string(*original);

  auto loaded = hdc::ml::make_model(name, kBudget);
  std::istringstream in(saved);
  loaded->load_state(in);

  EXPECT_EQ(save_to_string(*loaded), saved) << name << ": state drifted";
  EXPECT_EQ(loaded->predict_all_bits(g.bits), original->predict_all_bits(g.bits))
      << name << ": predictions drifted";
}

TEST(BundleZooRoundTrip, EveryModelOnPima) {
  for (const std::string& name : kModelNames) {
    SCOPED_TRACE(name);
    expect_model_round_trips(name, golden_pima());
  }
}

TEST(BundleZooRoundTrip, EveryModelOnSylhet) {
  for (const std::string& name : kModelNames) {
    SCOPED_TRACE(name);
    expect_model_round_trips(name, golden_sylhet());
  }
}

TEST(BundleZooRoundTrip, PackedAndDenseConfigsBothRoundTrip) {
  // KNN persists its training store in whichever representation it was
  // fitted with ("packed" vs "dense"); both must survive the trip, and the
  // other models' state must be representation-independent.
  PackedGuard guard;
  for (const bool packed : {true, false}) {
    hdc::ml::set_packed_enabled(packed);
    SCOPED_TRACE(packed ? "packed" : "dense");
    for (const std::string& name : {std::string("KNN"),
                                    std::string("Logistic Regression"),
                                    std::string("Random Forest")}) {
      SCOPED_TRACE(name);
      expect_model_round_trips(name, golden_pima());
    }
  }
}

TEST(BundleZooRoundTrip, UnfittedSaveThrows) {
  for (const std::string& name : kModelNames) {
    SCOPED_TRACE(name);
    const auto model = hdc::ml::make_model(name, kBudget);
    std::ostringstream out;
    EXPECT_THROW(model->save_state(out), std::logic_error);
  }
}

TEST(BundleNnRoundTrip, SequentialWeightsAndPredictions) {
  const Golden& g = golden_pima();
  hdc::nn::SequentialConfig config;
  config.hidden = {16, 8};
  config.max_epochs = 30;
  config.seed = 11;
  hdc::nn::Sequential original(config);
  const hdc::ml::Matrix X = g.extractor.transform_to_matrix(g.ds);
  original.fit(X, g.ds.labels());

  const std::string saved = save_to_string(original);
  hdc::nn::Sequential loaded;
  std::istringstream in(saved);
  loaded.load_state(in);

  EXPECT_EQ(save_to_string(loaded), saved);
  for (std::size_t i = 0; i < X.size(); ++i) {
    // Bit-identical doubles: same weights, same deterministic forward pass.
    EXPECT_EQ(loaded.predict_proba(X[i]), original.predict_proba(X[i])) << i;
  }
}

TEST(BundleScalerRoundTrip, MinMaxAndStandard) {
  const hdc::data::Dataset ds = golden_pima().ds;

  hdc::data::MinMaxScaler minmax;
  minmax.fit(ds);
  std::stringstream mm_stream;
  minmax.save(mm_stream);
  hdc::data::MinMaxScaler minmax_loaded;
  minmax_loaded.load(mm_stream);
  const hdc::data::Dataset mm_a = minmax.transform(ds);
  const hdc::data::Dataset mm_b = minmax_loaded.transform(ds);

  hdc::data::StandardScaler standard;
  standard.fit(ds);
  std::stringstream std_stream;
  standard.save(std_stream);
  hdc::data::StandardScaler standard_loaded;
  standard_loaded.load(std_stream);
  const hdc::data::Dataset std_a = standard.transform(ds);
  const hdc::data::Dataset std_b = standard_loaded.transform(ds);

  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    for (std::size_t j = 0; j < ds.n_cols(); ++j) {
      EXPECT_EQ(mm_a.value(i, j), mm_b.value(i, j)) << i << "," << j;
      EXPECT_EQ(std_a.value(i, j), std_b.value(i, j)) << i << "," << j;
    }
  }
}

TEST(BundleScalerRoundTrip, UnfittedSaveThrows) {
  std::ostringstream out;
  EXPECT_THROW(hdc::data::MinMaxScaler().save(out), std::logic_error);
  EXPECT_THROW(hdc::data::StandardScaler().save(out), std::logic_error);
}

TEST(BundleOnlineRoundTrip, PrototypesAndPredictions) {
  const Golden& g = golden_sylhet();
  hdc::core::OnlineHdClassifier original;
  original.fit(g.vectors, g.ds.labels());

  std::stringstream stream;
  original.save(stream);
  hdc::core::OnlineHdClassifier loaded;
  loaded.load(stream);

  EXPECT_EQ(loaded.prototype(0), original.prototype(0));
  EXPECT_EQ(loaded.prototype(1), original.prototype(1));
  for (const hdc::hv::BitVector& v : g.vectors) {
    EXPECT_EQ(loaded.predict(v), original.predict(v));
  }
}

/// Full bundle: every section kind at once, through save/load/save.
TEST(BundleFullRoundTrip, AllSectionsSurvive) {
  const Golden& g = golden_pima();

  ModelBundle bundle;
  bundle.extractor = clone_extractor(g.extractor);
  {
    hdc::core::HammingClassifier hamming;
    hamming.fit(g.vectors, g.ds.labels());
    bundle.hamming = std::move(hamming);
  }
  bundle.minmax_scaler.emplace();
  bundle.minmax_scaler->fit(g.ds);
  bundle.standard_scaler.emplace();
  bundle.standard_scaler->fit(g.ds);
  bundle.online.emplace();
  bundle.online->fit(g.vectors, g.ds.labels());
  {
    hdc::nn::SequentialConfig config;
    config.hidden = {8};
    config.max_epochs = 10;
    bundle.nn = std::make_unique<hdc::nn::Sequential>(config);
    bundle.nn->fit(g.extractor.transform_to_matrix(g.ds), g.ds.labels());
  }
  for (const char* name : {"Logistic Regression", "Decision Tree"}) {
    auto model = hdc::ml::make_model(name, kBudget);
    model->fit_bits(g.bits, g.ds.labels());
    bundle.models.push_back(std::move(model));
  }

  std::ostringstream first;
  save_bundle(first, bundle);
  std::istringstream stored(first.str());
  const ModelBundle loaded = load_bundle(stored);

  // The string oracle: a second save of the loaded bundle must reproduce
  // the first byte for byte.
  std::ostringstream second;
  save_bundle(second, loaded);
  EXPECT_EQ(second.str(), first.str());

  ASSERT_TRUE(loaded.extractor.has_value());
  ASSERT_TRUE(loaded.hamming.has_value());
  ASSERT_TRUE(loaded.online.has_value());
  ASSERT_NE(loaded.nn, nullptr);
  ASSERT_EQ(loaded.model_names(),
            (std::vector<std::string>{"Logistic Regression", "Decision Tree"}));

  // Loaded pipeline behaves identically end to end.
  for (std::size_t i = 0; i < g.ds.n_rows(); ++i) {
    EXPECT_EQ(loaded.extractor->encode_row(g.ds.row(i)), g.vectors[i]) << i;
    EXPECT_EQ(loaded.hamming->predict(g.vectors[i]),
              bundle.hamming->predict(g.vectors[i]))
        << i;
  }
  for (const std::string& name : loaded.model_names()) {
    EXPECT_EQ(loaded.find_model(name)->predict_all_bits(g.bits),
              bundle.find_model(name)->predict_all_bits(g.bits))
        << name;
  }
}

TEST(BundleFullRoundTrip, EmptyBundleSaveThrows) {
  const ModelBundle empty;
  std::ostringstream out;
  EXPECT_THROW(save_bundle(out, empty), std::logic_error);
}

TEST(BundleFullRoundTrip, FileRoundTrip) {
  const Golden& g = golden_sylhet();
  ModelBundle bundle;
  bundle.extractor = clone_extractor(g.extractor);
  const std::string path = ::testing::TempDir() + "/roundtrip.bundle";
  hdc::core::save_bundle_file(path, bundle);
  const ModelBundle loaded = hdc::core::load_bundle_file(path);
  ASSERT_TRUE(loaded.extractor.has_value());
  EXPECT_EQ(loaded.extractor->encode_row(g.ds.row(0)), g.vectors[0]);
  // No manifest section was written, and none is invented on load.
  EXPECT_FALSE(loaded.manifest.has_value());
}

TEST(BundleManifestRoundTrip, EveryFieldSurvives) {
  const Golden& g = golden_pima();
  ModelBundle bundle;
  bundle.extractor = clone_extractor(g.extractor);

  hdc::core::RunManifest manifest;
  manifest.dataset = "pima_m,sylhet";  // grid-style joined names
  manifest.dataset_hash = 0xdeadbeefcafef00dULL;
  manifest.rows = 90;
  manifest.cols = 9;
  manifest.dimensions = 512;
  manifest.extractor_seed = 99;
  manifest.split_seed = 7;
  manifest.simd_tier = "avx2";
  manifest.threads = 4;
  manifest.hardware_threads = 8;
  manifest.packed_ml = true;
  manifest.fold_cache = true;
  manifest.obs_enabled = true;
  manifest.trace_enabled = false;
  manifest.shard_rows = 65536;
  manifest.num_shards = 16;
  manifest.obs_json = "{\"counters\":{\"experiment.folds\":10}}";
  bundle.manifest = manifest;

  std::ostringstream first;
  save_bundle(first, bundle);
  std::istringstream stored(first.str());
  const ModelBundle loaded = load_bundle(stored);

  // String oracle: re-saving reproduces the bytes, manifest section included.
  std::ostringstream second;
  save_bundle(second, loaded);
  EXPECT_EQ(second.str(), first.str());

  ASSERT_TRUE(loaded.manifest.has_value());
  const hdc::core::RunManifest& m = *loaded.manifest;
  EXPECT_EQ(m.dataset, manifest.dataset);
  EXPECT_EQ(m.dataset_hash, manifest.dataset_hash);
  EXPECT_EQ(m.rows, manifest.rows);
  EXPECT_EQ(m.cols, manifest.cols);
  EXPECT_EQ(m.dimensions, manifest.dimensions);
  EXPECT_EQ(m.extractor_seed, manifest.extractor_seed);
  EXPECT_EQ(m.split_seed, manifest.split_seed);
  EXPECT_EQ(m.simd_tier, manifest.simd_tier);
  EXPECT_EQ(m.threads, manifest.threads);
  EXPECT_EQ(m.hardware_threads, manifest.hardware_threads);
  EXPECT_EQ(m.packed_ml, manifest.packed_ml);
  EXPECT_EQ(m.fold_cache, manifest.fold_cache);
  EXPECT_EQ(m.obs_enabled, manifest.obs_enabled);
  EXPECT_EQ(m.trace_enabled, manifest.trace_enabled);
  EXPECT_EQ(m.shard_rows, manifest.shard_rows);
  EXPECT_EQ(m.num_shards, manifest.num_shards);
  EXPECT_EQ(m.obs_json, manifest.obs_json);
}

TEST(BundleManifestRoundTrip, PreShardManifestsStillLoad) {
  // Manifests written before the shard-geometry line end right after the
  // obs line; loading one must succeed with zeroed shard fields, not throw.
  hdc::core::RunManifest manifest;
  manifest.dataset = "pima_m";
  manifest.simd_tier = "scalar";
  manifest.shard_rows = 4096;
  manifest.num_shards = 3;
  std::ostringstream out;
  hdc::core::save_manifest(out, manifest);
  std::string bytes = out.str();
  const std::size_t shards_at = bytes.find("shards");
  ASSERT_NE(shards_at, std::string::npos);
  const std::size_t line_end = bytes.find('\n', shards_at);
  ASSERT_NE(line_end, std::string::npos);
  bytes.erase(shards_at, line_end - shards_at + 1);

  std::istringstream in(bytes);
  const hdc::core::RunManifest loaded = hdc::core::load_manifest(in);
  EXPECT_EQ(loaded.dataset, "pima_m");
  EXPECT_EQ(loaded.shard_rows, 0u);
  EXPECT_EQ(loaded.num_shards, 0u);
}

TEST(BundleManifestRoundTrip, CapturedManifestFingerprintsTheDataset) {
  const Golden& g = golden_pima();
  hdc::core::ExperimentConfig config;
  config.extractor = g.extractor.config();
  config.seed = 5;

  ModelBundle bundle;
  bundle.extractor = clone_extractor(g.extractor);
  bundle.manifest = hdc::core::make_run_manifest(g.ds, "golden_pima", config);

  std::ostringstream out;
  save_bundle(out, bundle);
  std::istringstream in(out.str());
  const ModelBundle loaded = load_bundle(in);

  ASSERT_TRUE(loaded.manifest.has_value());
  EXPECT_EQ(loaded.manifest->dataset, "golden_pima");
  EXPECT_EQ(loaded.manifest->dataset_hash,
            hdc::core::dataset_fingerprint(g.ds));
  EXPECT_EQ(loaded.manifest->rows, g.ds.n_rows());
  EXPECT_EQ(loaded.manifest->cols, g.ds.n_cols());
  EXPECT_EQ(loaded.manifest->dimensions, g.extractor.config().dimensions);
  EXPECT_EQ(loaded.manifest->split_seed, 5u);
  EXPECT_FALSE(loaded.manifest->simd_tier.empty());

  // The fingerprint is sensitive to the data bytes: any value edit moves it.
  hdc::data::Dataset edited = g.ds;
  edited.set_value(0, 0, edited.value(0, 0) + 1.0);
  EXPECT_NE(hdc::core::dataset_fingerprint(edited),
            hdc::core::dataset_fingerprint(g.ds));
}

}  // namespace
