#include "eval/cross_validation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "data/synthetic.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"

namespace hdc::eval {
namespace {

TEST(KfoldRun, CallsRunnerOncePerFold) {
  const std::vector<int> labels(40, 0);
  std::vector<int> both = labels;
  for (std::size_t i = 0; i < 20; ++i) both[i] = 1;
  std::size_t calls = 0;
  const CvResult result = kfold_run(
      both, 5, 1,
      [&](std::span<const std::size_t> train, std::span<const std::size_t> test) {
        ++calls;
        EXPECT_EQ(train.size() + test.size(), 40u);
        return 1.0;
      });
  EXPECT_EQ(calls, 5u);
  EXPECT_DOUBLE_EQ(result.mean_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(result.stddev_accuracy, 0.0);
}

TEST(KfoldRun, AggregatesMeanAndStddev) {
  std::vector<int> labels(20, 0);
  for (std::size_t i = 0; i < 10; ++i) labels[i] = 1;
  double next = 0.0;
  const CvResult result = kfold_run(
      labels, 4, 2,
      [&](std::span<const std::size_t>, std::span<const std::size_t>) {
        next += 0.2;
        return next;  // 0.2, 0.4, 0.6, 0.8
      });
  EXPECT_NEAR(result.mean_accuracy, 0.5, 1e-12);
  EXPECT_NEAR(result.stddev_accuracy, std::sqrt(0.05), 1e-12);
}

TEST(KfoldRun, FoldsAreDisjointAcrossCalls) {
  std::vector<int> labels(30, 0);
  for (std::size_t i = 0; i < 15; ++i) labels[i] = 1;
  std::set<std::size_t> seen;
  (void)kfold_run(labels, 3, 3,
                  [&](std::span<const std::size_t>, std::span<const std::size_t> test) {
                    for (const std::size_t i : test) {
                      EXPECT_TRUE(seen.insert(i).second);
                    }
                    return 0.0;
                  });
  EXPECT_EQ(seen.size(), 30u);
}

TEST(KfoldAccuracy, EvaluatesModelOnHeldOutFolds) {
  const data::Dataset ds = data::make_two_gaussians(60, 3, 5.0, 91);
  const CvResult result = kfold_accuracy(
      [] { return std::make_unique<ml::KnnClassifier>(); }, ds.feature_matrix(),
      ds.labels(), 5, 4);
  EXPECT_GT(result.mean_accuracy, 0.95);
}

TEST(KfoldAccuracy, HardProblemScoresLower) {
  const data::Dataset easy = data::make_two_gaussians(60, 3, 5.0, 92);
  const data::Dataset hard = data::make_two_gaussians(60, 3, 0.3, 93);
  const auto factory = [] { return std::make_unique<ml::LogisticRegression>(); };
  const double easy_acc =
      kfold_accuracy(factory, easy.feature_matrix(), easy.labels(), 5, 5)
          .mean_accuracy;
  const double hard_acc =
      kfold_accuracy(factory, hard.feature_matrix(), hard.labels(), 5, 5)
          .mean_accuracy;
  EXPECT_GT(easy_acc, hard_acc);
}

TEST(KfoldAccuracy, DeterministicPerSeed) {
  const data::Dataset ds = data::make_two_gaussians(40, 2, 2.0, 94);
  const auto factory = [] { return std::make_unique<ml::KnnClassifier>(); };
  const auto a = kfold_accuracy(factory, ds.feature_matrix(), ds.labels(), 4, 6);
  const auto b = kfold_accuracy(factory, ds.feature_matrix(), ds.labels(), 4, 6);
  EXPECT_EQ(a.fold_accuracy, b.fold_accuracy);
}

}  // namespace
}  // namespace hdc::eval
