#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace hdc::obs {
namespace {

/// Minimal parsed view of one Chrome trace-event JSON object, recovered by
/// string scanning (no JSON library in the repo — the format we emit is flat
/// enough that field extraction is unambiguous).
struct ParsedEvent {
  std::string name;
  std::string ph;
  std::uint64_t tid = 0;
  double ts = 0.0;   // microseconds
  double dur = 0.0;  // microseconds
  std::uint64_t id = 0;      // flow events: shared arrow id
  std::uint64_t span = 0;    // complete events: args.span
  std::uint64_t parent = 0;  // complete events: args.parent (0 = root)
  [[nodiscard]] double end() const { return ts + dur; }
};

std::string extract_string_field(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return {};
  const std::size_t begin = at + needle.size();
  const std::size_t end = object.find('"', begin);
  return object.substr(begin, end - begin);
}

double extract_number_field(const std::string& object, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = object.find(needle);
  if (at == std::string::npos) return -1.0;
  return std::stod(object.substr(at + needle.size()));
}

/// Split the "traceEvents" array into per-event object strings and parse the
/// fields the tests assert on.
std::vector<ParsedEvent> parse_trace(const std::string& json) {
  std::vector<ParsedEvent> events;
  const std::size_t array_at = json.find("\"traceEvents\"");
  if (array_at == std::string::npos) return events;
  std::size_t pos = json.find('[', array_at);
  const std::size_t array_end = json.find(']', pos);
  while (pos < array_end) {
    const std::size_t open = json.find('{', pos);
    if (open == std::string::npos || open > array_end) break;
    const std::size_t close = json.find('}', open);
    const std::string object = json.substr(open, close - open + 1);
    ParsedEvent e;
    e.name = extract_string_field(object, "name");
    e.ph = extract_string_field(object, "ph");
    e.tid = static_cast<std::uint64_t>(extract_number_field(object, "tid"));
    e.ts = extract_number_field(object, "ts");
    e.dur = extract_number_field(object, "dur");
    const auto as_id = [&](const char* key) {
      const double v = extract_number_field(object, key);
      return v < 0.0 ? std::uint64_t{0} : static_cast<std::uint64_t>(v);
    };
    e.id = as_id("id");
    e.span = as_id("span");
    e.parent = as_id("parent");
    events.push_back(e);
    pos = close + 1;
  }
  return events;
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear_trace();
    set_trace_enabled(true);
  }
  void TearDown() override {
    set_trace_enabled(false);
    clear_trace();
  }
};

TEST_F(ObsTraceTest, DisabledSpansRecordNothing) {
  set_trace_enabled(false);
  {
    Span span("test.disabled");
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(ObsTraceTest, SpanRecordsOneCompleteEvent) {
  { Span span("test.single"); }
  EXPECT_EQ(trace_event_count(), 1u);
  const std::vector<ParsedEvent> events = parse_trace(chrome_trace_json());
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.single");
  EXPECT_EQ(events[0].ph, "X");  // complete event: pairing cannot be lost
  EXPECT_GE(events[0].ts, 0.0);
  EXPECT_GE(events[0].dur, 0.0);
}

TEST_F(ObsTraceTest, NestedSpansAreContainedIntervals) {
  {
    Span outer("test.outer");
    { Span inner("test.inner"); }
    { Span inner2("test.inner2"); }
  }
  EXPECT_EQ(trace_event_count(), 3u);
  std::vector<ParsedEvent> events = parse_trace(chrome_trace_json());
  ASSERT_EQ(events.size(), 3u);

  const auto find = [&](const std::string& name) -> const ParsedEvent& {
    const auto it = std::find_if(events.begin(), events.end(),
                                 [&](const ParsedEvent& e) { return e.name == name; });
    EXPECT_NE(it, events.end()) << name;
    return *it;
  };
  const ParsedEvent& outer = find("test.outer");
  const ParsedEvent& inner = find("test.inner");
  const ParsedEvent& inner2 = find("test.inner2");

  // Same thread, and children strictly inside the parent interval.
  EXPECT_EQ(outer.tid, inner.tid);
  EXPECT_EQ(outer.tid, inner2.tid);
  EXPECT_LE(outer.ts, inner.ts);
  EXPECT_GE(outer.end(), inner.end());
  EXPECT_LE(outer.ts, inner2.ts);
  EXPECT_GE(outer.end(), inner2.end());
  // Siblings are sequential, never partially overlapping.
  EXPECT_LE(inner.end(), inner2.ts + 1e-9);
}

TEST_F(ObsTraceTest, SpansOnDifferentThreadsGetDistinctTids) {
  { Span span("test.main_thread"); }
  std::thread child([] { Span span("test.child_thread"); });
  child.join();
  EXPECT_EQ(trace_event_count(), 2u);
  const std::vector<ParsedEvent> events = parse_trace(chrome_trace_json());
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(ObsTraceTest, EventPairingSurvivesManySpans) {
  constexpr std::size_t kSpans = 500;
  for (std::size_t i = 0; i < kSpans; ++i) {
    Span a("test.many.a");
    Span b("test.many.b");
  }
  EXPECT_EQ(trace_event_count(), 2 * kSpans);
  const std::vector<ParsedEvent> events = parse_trace(chrome_trace_json());
  ASSERT_EQ(events.size(), 2 * kSpans);
  // Every event is a self-contained "X" record — nothing left unpaired.
  for (const ParsedEvent& e : events) {
    EXPECT_EQ(e.ph, "X");
    EXPECT_GE(e.dur, 0.0);
  }
  const std::size_t a_count = static_cast<std::size_t>(std::count_if(
      events.begin(), events.end(),
      [](const ParsedEvent& e) { return e.name == "test.many.a"; }));
  EXPECT_EQ(a_count, kSpans);
  EXPECT_EQ(trace_dropped_count(), 0u);
}

TEST_F(ObsTraceTest, JsonIsWellFormedEnvelope) {
  { Span span("test.envelope"); }
  const std::string json = chrome_trace_json();
  // Braces/brackets balance and the required top-level keys are present.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST_F(ObsTraceTest, ClearTraceDiscardsEvents) {
  { Span span("test.cleared"); }
  ASSERT_EQ(trace_event_count(), 1u);
  clear_trace();
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(parse_trace(chrome_trace_json()).size(), 0u);
}

TEST_F(ObsTraceTest, CompleteEventsCarrySpanAndParentIds) {
  {
    Span outer("test.ids.outer");
    Span inner("test.ids.inner");
  }
  std::vector<ParsedEvent> events = parse_trace(chrome_trace_json());
  ASSERT_EQ(events.size(), 2u);
  const auto find = [&](const std::string& name) -> const ParsedEvent& {
    const auto it = std::find_if(events.begin(), events.end(),
                                 [&](const ParsedEvent& e) { return e.name == name; });
    EXPECT_NE(it, events.end()) << name;
    return *it;
  };
  const ParsedEvent& outer = find("test.ids.outer");
  const ParsedEvent& inner = find("test.ids.inner");
  EXPECT_NE(outer.span, 0u);
  EXPECT_NE(inner.span, 0u);
  EXPECT_NE(outer.span, inner.span);  // process-unique ids
  EXPECT_EQ(outer.parent, 0u);        // root span
  EXPECT_EQ(inner.parent, outer.span);
}

TEST_F(ObsTraceTest, FlowEventsLinkSubmitToExecuteAcrossThreads) {
  std::uint64_t flow = 0;
  SpanContext context;
  {
    Span submit("test.flow.submit");
    context = current_span_context();
    flow = flow_begin("test.flow");
  }
  ASSERT_NE(flow, 0u);
  std::thread worker([&] {
    ContextGuard guard(context);
    flow_end("test.flow", flow);
    Span task("test.flow.task");
  });
  worker.join();

  std::vector<ParsedEvent> events = parse_trace(chrome_trace_json());
  const auto find_ph = [&](const std::string& ph) -> const ParsedEvent& {
    const auto it = std::find_if(events.begin(), events.end(),
                                 [&](const ParsedEvent& e) { return e.ph == ph; });
    EXPECT_NE(it, events.end()) << ph;
    return *it;
  };
  const ParsedEvent& start = find_ph("s");
  const ParsedEvent& finish = find_ph("f");
  EXPECT_EQ(start.name, "test.flow");
  EXPECT_EQ(finish.name, "test.flow");
  EXPECT_NE(start.id, 0u);
  EXPECT_EQ(start.id, finish.id);    // the arrow binds on a shared id
  EXPECT_NE(start.tid, finish.tid);  // across the thread boundary

  // The worker's span parents back to the submitting span via the adopted
  // context, even though it ran on another thread.
  const auto find_name = [&](const std::string& name) -> const ParsedEvent& {
    const auto it = std::find_if(events.begin(), events.end(),
                                 [&](const ParsedEvent& e) { return e.name == name; });
    EXPECT_NE(it, events.end()) << name;
    return *it;
  };
  const ParsedEvent& submit = find_name("test.flow.submit");
  const ParsedEvent& task = find_name("test.flow.task");
  EXPECT_EQ(task.parent, submit.span);
}

TEST_F(ObsTraceTest, FlowBeginReturnsZeroWhenDisabledAndEndIgnoresIt) {
  set_trace_enabled(false);
  const std::uint64_t flow = flow_begin("test.flow.off");
  EXPECT_EQ(flow, 0u);
  flow_end("test.flow.off", flow);  // must be a safe no-op
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(ObsTraceTest, CollapsedStacksFoldParentChainsWithWeights) {
  {
    // Sleeps guarantee strictly positive self-time for both chain lines
    // (collapsed_stacks omits zero-weight chains).
    Span root("test.fold.root");
    {
      Span child("test.fold.child");
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const std::string folded = collapsed_stacks();
  // One line per unique chain: "root;...;leaf <self-ns>\n". The child chain
  // must spell out the full path through its parent.
  EXPECT_NE(folded.find("test.fold.root;test.fold.child "), std::string::npos)
      << folded;
  std::size_t start = 0;
  std::size_t lines = 0;
  while (start < folded.size()) {
    std::size_t end = folded.find('\n', start);
    if (end == std::string::npos) end = folded.size();
    const std::string line = folded.substr(start, end - start);
    start = end + 1;
    if (line.empty()) continue;
    ++lines;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    // The weight is a bare non-negative integer (nanoseconds of self-time).
    const std::string weight = line.substr(space + 1);
    ASSERT_FALSE(weight.empty()) << line;
    for (const char c : weight) {
      EXPECT_TRUE(c >= '0' && c <= '9') << line;
    }
  }
  EXPECT_GE(lines, 1u);
}

}  // namespace
}  // namespace hdc::obs
