#include "core/online.hpp"

#include <gtest/gtest.h>

#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace hdc::core {
namespace {

struct Clustered {
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
};

Clustered make_clusters(std::size_t per_class, std::size_t dim, std::size_t noise_bits,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  const hv::BitVector anchor0 = hv::BitVector::random_balanced(dim, rng);
  const hv::BitVector anchor1 = hv::BitVector::random_balanced(dim, rng);
  Clustered out;
  for (std::size_t i = 0; i < per_class; ++i) {
    out.vectors.push_back(anchor0.with_flipped(noise_bits, noise_bits, rng));
    out.labels.push_back(0);
    out.vectors.push_back(anchor1.with_flipped(noise_bits, noise_bits, rng));
    out.labels.push_back(1);
  }
  return out;
}

TEST(OnlineHd, LearnsCleanClusters) {
  const Clustered c = make_clusters(20, 2000, 100, 1);
  OnlineHdClassifier model;
  model.fit(c.vectors, c.labels);
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    EXPECT_EQ(model.predict(c.vectors[i]), c.labels[i]) << i;
  }
}

TEST(OnlineHd, ConvergesAndStops) {
  const Clustered c = make_clusters(15, 1000, 50, 2);
  OnlineHdClassifier model;
  model.fit(c.vectors, c.labels);
  ASSERT_FALSE(model.updates_per_epoch().empty());
  EXPECT_EQ(model.updates_per_epoch().back(), 0u);  // converged
  EXPECT_LT(model.updates_per_epoch().size(), 30u);
}

TEST(OnlineHd, RetrainingBeatsPlainBundlingOnImbalance) {
  // With 5x class imbalance the plain majority prototype of the small class
  // drowns; retraining recovers the boundary.
  util::Rng rng(3);
  Clustered c = make_clusters(5, 2000, 400, 3);
  // add many extra negatives
  const hv::BitVector anchor0 = c.vectors[0];
  for (int i = 0; i < 50; ++i) {
    c.vectors.push_back(anchor0.with_flipped(400, 400, rng));
    c.labels.push_back(0);
  }
  OnlineHdClassifier online;
  online.fit(c.vectors, c.labels);
  std::size_t online_hits = 0;
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    if (online.predict(c.vectors[i]) == c.labels[i]) ++online_hits;
  }
  HammingClassifier prototype(HammingMode::kPrototype);
  prototype.fit(c.vectors, c.labels);
  std::size_t proto_hits = 0;
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    if (prototype.predict(c.vectors[i]) == c.labels[i]) ++proto_hits;
  }
  EXPECT_GE(online_hits, proto_hits);
  EXPECT_GT(static_cast<double>(online_hits) / c.vectors.size(), 0.9);
}

TEST(OnlineHd, PartialFitInitialisesAndLearns) {
  const Clustered c = make_clusters(10, 1000, 40, 4);
  OnlineHdClassifier model;
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    model.partial_fit(c.vectors[i], c.labels[i]);
  }
  std::size_t hits = 0;
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    if (model.predict(c.vectors[i]) == c.labels[i]) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / c.vectors.size(), 0.9);
}

TEST(OnlineHd, MarginSignMatchesPrediction) {
  const Clustered c = make_clusters(10, 1000, 30, 5);
  OnlineHdClassifier model;
  model.fit(c.vectors, c.labels);
  for (std::size_t i = 0; i < 10; ++i) {
    const double m = model.margin(c.vectors[i]);
    EXPECT_EQ(model.predict(c.vectors[i]), m >= 0.0 ? 1 : 0);
  }
}

TEST(OnlineHd, RejectsBadInput) {
  OnlineHdClassifier model;
  EXPECT_THROW(model.fit({}, {}), std::invalid_argument);
  util::Rng rng(6);
  std::vector<hv::BitVector> vectors = {hv::BitVector::random(100, rng)};
  EXPECT_THROW(model.fit(vectors, {2}), std::invalid_argument);
  EXPECT_THROW(model.partial_fit(vectors[0], 3), std::invalid_argument);
}

TEST(OnlineHd, UnfittedThrows) {
  const OnlineHdClassifier model;
  EXPECT_THROW((void)model.margin(hv::BitVector(10)), std::logic_error);
  EXPECT_THROW((void)model.prototype(0), std::logic_error);
}

TEST(OnlineHd, DimensionMismatchThrows) {
  const Clustered c = make_clusters(5, 500, 20, 7);
  OnlineHdClassifier model;
  model.fit(c.vectors, c.labels);
  EXPECT_THROW((void)model.predict(hv::BitVector(400)), std::invalid_argument);
  EXPECT_THROW(model.partial_fit(hv::BitVector(400), 0), std::invalid_argument);
}

TEST(OnlineHd, ZeroEpochConfigRejected) {
  OnlineHdConfig config;
  config.max_epochs = 0;
  EXPECT_THROW(OnlineHdClassifier{config}, std::invalid_argument);
}

TEST(OnlineHd, ImprovesOverPrototypesOnPima) {
  // End-to-end: retraining should not be worse than one-shot prototypes on
  // the harder Pima R encoding.
  const data::Dataset ds =
      data::remove_missing_rows(data::make_pima({150, 80, true, 0.05, 8}));
  ExtractorConfig config;
  config.dimensions = 2000;
  HdcFeatureExtractor extractor(config);
  extractor.fit(ds);
  const auto vectors = extractor.transform(ds);

  OnlineHdClassifier online;
  online.fit(vectors, ds.labels());
  std::size_t online_hits = 0;
  HammingClassifier prototype(HammingMode::kPrototype);
  prototype.fit(vectors, ds.labels());
  std::size_t proto_hits = 0;
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    if (online.predict(vectors[i]) == ds.label(i)) ++online_hits;
    if (prototype.predict(vectors[i]) == ds.label(i)) ++proto_hits;
  }
  EXPECT_GE(online_hits + 2, proto_hits);  // allow tiny regression
  EXPECT_GT(static_cast<double>(online_hits) / vectors.size(), 0.7);
}

}  // namespace
}  // namespace hdc::core
