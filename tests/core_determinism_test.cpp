// End-to-end determinism: identical seeds must give bit-identical results
// across independent runs, thread-pool sizes, and module boundaries — the
// repository-wide guarantee DESIGN.md §7 documents.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "parallel/thread_pool.hpp"

namespace hdc::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.extractor.dimensions = 1000;
  config.model_budget = 0.2;
  return config;
}

TEST(Determinism, ExtractorIndependentOfThreadCount) {
  const data::Dataset ds = data::make_sylhet({30, 40, 1});
  HdcFeatureExtractor extractor(tiny_config().extractor);
  extractor.fit(ds);

  // transform() uses the global pool; encode_row is the serial reference.
  const auto parallel_vectors = extractor.transform(ds);
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    EXPECT_EQ(parallel_vectors[i], extractor.encode_row(ds.row(i))) << i;
  }
}

TEST(Determinism, ExplicitPoolsAgree) {
  const data::Dataset ds = data::make_sylhet({20, 30, 2});
  HdcFeatureExtractor extractor(tiny_config().extractor);
  extractor.fit(ds);
  // Single-threaded and four-thread pools through parallel_for must agree.
  parallel::ThreadPool one(1);
  parallel::ThreadPool four(4);
  std::vector<hv::BitVector> via_one(ds.n_rows());
  std::vector<hv::BitVector> via_four(ds.n_rows());
  parallel::parallel_for(0, ds.n_rows(),
                         [&](std::size_t i) { via_one[i] = extractor.encode_row(ds.row(i)); },
                         &one);
  parallel::parallel_for(0, ds.n_rows(),
                         [&](std::size_t i) { via_four[i] = extractor.encode_row(ds.row(i)); },
                         &four);
  EXPECT_EQ(via_one, via_four);
}

TEST(Determinism, HammingLooStableAcrossRuns) {
  const data::Dataset ds = data::make_sylhet({40, 60, 3});
  const auto a = hamming_loo(ds, tiny_config());
  const auto b = hamming_loo(ds, tiny_config());
  EXPECT_EQ(a.confusion.tp, b.confusion.tp);
  EXPECT_EQ(a.confusion.fp, b.confusion.fp);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Determinism, FullKfoldPipelineStable) {
  const data::Dataset ds = data::make_sylhet({40, 60, 4});
  const auto a = kfold_cv_accuracy(ds, "Random Forest", InputMode::kHypervectors, 4,
                                   tiny_config());
  const auto b = kfold_cv_accuracy(ds, "Random Forest", InputMode::kHypervectors, 4,
                                   tiny_config());
  EXPECT_EQ(a.fold_accuracy, b.fold_accuracy);
}

TEST(Determinism, DatasetGenerationSeedSeparation) {
  // Different seeds give different data; same seeds identical data.
  const data::Dataset a = data::make_sylhet({25, 25, 5});
  const data::Dataset b = data::make_sylhet({25, 25, 6});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.n_rows() && !any_diff; ++i) {
    for (std::size_t j = 0; j < a.n_cols(); ++j) {
      if (a.value(i, j) != b.value(i, j)) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Determinism, ExtractorSeedChangesVectorsNotGeometry) {
  // Different extractor seeds produce different hyperspaces whose *relative*
  // structure (which pair of rows is closer) is preserved in expectation.
  const data::Dataset ds = data::make_pima({20, 10, false, 0.0, 7});
  ExtractorConfig c1 = tiny_config().extractor;
  ExtractorConfig c2 = c1;
  c2.seed = c1.seed + 1;
  HdcFeatureExtractor e1(c1);
  HdcFeatureExtractor e2(c2);
  e1.fit(ds);
  e2.fit(ds);
  EXPECT_NE(e1.encode_row(ds.row(0)), e2.encode_row(ds.row(0)));
  // Same-row self distance is zero in both spaces.
  EXPECT_EQ(e1.encode_row(ds.row(0)).hamming(e1.encode_row(ds.row(0))), 0u);
  EXPECT_EQ(e2.encode_row(ds.row(0)).hamming(e2.encode_row(ds.row(0))), 0u);
}

}  // namespace
}  // namespace hdc::core
