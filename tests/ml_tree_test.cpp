#include "ml/tree.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace hdc::ml {
namespace {

TEST(DecisionTree, SolvesXorExactly) {
  const data::Dataset ds = data::make_xor(50, 0.15, 31);
  DecisionTree tree;
  tree.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(tree.accuracy(ds.feature_matrix(), ds.labels()), 0.99);
}

TEST(DecisionTree, PureNodeStopsSplitting) {
  Matrix X = {{1.0}, {2.0}, {3.0}};
  Labels y = {1, 1, 1};
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_EQ(tree.node_count(), 1u);  // root is pure
  EXPECT_EQ(tree.predict(X[0]), 1);
}

TEST(DecisionTree, SimpleThresholdSplit) {
  Matrix X = {{1.0}, {2.0}, {10.0}, {11.0}};
  Labels y = {0, 0, 1, 1};
  DecisionTree tree;
  tree.fit(X, y);
  const std::vector<double> low = {0.5};
  const std::vector<double> high = {20.0};
  EXPECT_EQ(tree.predict(low), 0);
  EXPECT_EQ(tree.predict(high), 1);
  EXPECT_EQ(tree.node_count(), 3u);  // root + two leaves
}

TEST(DecisionTree, MaxDepthLimitsGrowth) {
  const data::Dataset ds = data::make_two_gaussians(200, 3, 1.0, 32);
  TreeConfig config;
  config.max_depth = 2;
  DecisionTree tree(config);
  tree.fit(ds.feature_matrix(), ds.labels());
  EXPECT_LE(tree.depth(), 2u);
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const data::Dataset ds = data::make_two_gaussians(50, 2, 2.0, 33);
  TreeConfig config;
  config.min_samples_leaf = 20;
  DecisionTree tree(config);
  tree.fit(ds.feature_matrix(), ds.labels());
  // With 100 rows and leaves of >= 20, there can be at most 5 leaves.
  EXPECT_LE(tree.node_count(), 9u);
}

TEST(DecisionTree, BinaryColumnsSplitWithoutSorting) {
  // All-binary matrix (the hypervector case): still finds the signal bit.
  Matrix X;
  Labels y;
  for (int i = 0; i < 40; ++i) {
    const int label = i % 2;
    // Feature 1 equals the label; features 0 and 2 alternate meaninglessly.
    X.push_back({static_cast<double>(i % 3 == 0), static_cast<double>(label),
                 static_cast<double>(i % 5 == 0)});
    y.push_back(label);
  }
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_DOUBLE_EQ(tree.accuracy(X, y), 1.0);
  EXPECT_EQ(tree.node_count(), 3u);  // a single split on feature 1
}

TEST(DecisionTree, ProbabilityIsLeafFraction) {
  // The three identical rows cannot be split apart, so they form one mixed
  // leaf whose probability is the positive fraction 2/3.
  Matrix X = {{0.0}, {0.0}, {0.0}, {10.0}};
  Labels y = {1, 1, 0, 0};
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_NEAR(tree.predict_proba(X[0]), 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(tree.predict_proba(X[3]), 0.0, 1e-9);
}

TEST(DecisionTree, DeterministicWithFullFeatures) {
  const data::Dataset ds = data::make_two_gaussians(100, 4, 1.5, 34);
  DecisionTree a;
  DecisionTree b;
  a.fit(ds.feature_matrix(), ds.labels());
  b.fit(ds.feature_matrix(), ds.labels());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(ds.row(i)), b.predict_proba(ds.row(i)));
  }
}

TEST(DecisionTree, NotFittedThrows) {
  const DecisionTree tree;
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)tree.predict_proba(x), std::logic_error);
}

TEST(DecisionTree, QueryArityMismatchThrows) {
  Matrix X = {{1.0, 2.0}, {3.0, 4.0}};
  Labels y = {0, 1};
  DecisionTree tree;
  tree.fit(X, y);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW((void)tree.predict_proba(bad), std::invalid_argument);
}

TEST(DecisionTree, ConstantFeaturesYieldSingleLeaf) {
  Matrix X = {{5.0}, {5.0}, {5.0}, {5.0}};
  Labels y = {0, 1, 0, 1};
  DecisionTree tree;
  tree.fit(X, y);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_NEAR(tree.predict_proba(X[0]), 0.5, 1e-12);
}

TEST(DecisionTree, OverlappingDataDoesNotOverflowDepth) {
  const data::Dataset ds = data::make_two_gaussians(300, 2, 0.5, 35);
  DecisionTree tree;  // unlimited depth (capped at 64)
  tree.fit(ds.feature_matrix(), ds.labels());
  EXPECT_LE(tree.depth(), 64u);
  // Unlimited CART memorises the training set except exact duplicates.
  EXPECT_GT(tree.accuracy(ds.feature_matrix(), ds.labels()), 0.95);
}

}  // namespace
}  // namespace hdc::ml
