#include "ml/zoo.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace hdc::ml {
namespace {

TEST(Zoo, HasTheNinePaperModelsInOrder) {
  const auto zoo = paper_model_zoo();
  ASSERT_EQ(zoo.size(), 9u);
  EXPECT_EQ(zoo[0].name, "Random Forest");
  EXPECT_EQ(zoo[1].name, "KNN");
  EXPECT_EQ(zoo[2].name, "Decision Tree");
  EXPECT_EQ(zoo[3].name, "XGBoost");
  EXPECT_EQ(zoo[4].name, "CatBoost");
  EXPECT_EQ(zoo[5].name, "SGD");
  EXPECT_EQ(zoo[6].name, "Logistic Regression");
  EXPECT_EQ(zoo[7].name, "SVC");
  EXPECT_EQ(zoo[8].name, "LGBM");
}

TEST(Zoo, FactoryNamesMatchModels) {
  for (const auto& entry : paper_model_zoo(0.2)) {
    const auto model = entry.make();
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), entry.name);
  }
}

TEST(Zoo, MakeModelIsCaseInsensitive) {
  EXPECT_EQ(make_model("random forest")->name(), "Random Forest");
  EXPECT_EQ(make_model("XGBOOST", 0.5)->name(), "XGBoost");
}

TEST(Zoo, MakeModelNaiveBayesExtra) {
  EXPECT_EQ(make_model("Naive Bayes")->name(), "Naive Bayes");
}

TEST(Zoo, UnknownModelThrows) {
  EXPECT_THROW((void)make_model("Perceptron"), std::invalid_argument);
}

TEST(Zoo, BadBudgetThrows) {
  EXPECT_THROW((void)paper_model_zoo(0.0), std::invalid_argument);
  EXPECT_THROW((void)make_model("KNN", -1.0), std::invalid_argument);
}

// Every zoo model must train and produce valid probabilities on both a
// continuous and an all-binary (hypervector-like) matrix.
class ZooModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelSweep, FitsContinuousBlobs) {
  const data::Dataset ds = data::make_two_gaussians(60, 4, 4.0, 71);
  const auto model = make_model(GetParam(), 0.2);
  model->fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(model->accuracy(ds.feature_matrix(), ds.labels()), 0.9)
      << GetParam();
}

TEST_P(ZooModelSweep, FitsBinaryMatrix) {
  // 12 binary columns; label = column 3.
  Matrix X;
  Labels y;
  util::Rng rng(72);
  for (int i = 0; i < 120; ++i) {
    std::vector<double> row(12);
    for (auto& v : row) v = rng.bernoulli(0.5) ? 1.0 : 0.0;
    X.push_back(row);
    y.push_back(static_cast<int>(row[3]));
  }
  const auto model = make_model(GetParam(), 0.2);
  model->fit(X, y);
  EXPECT_GT(model->accuracy(X, y), 0.85) << GetParam();
}

TEST_P(ZooModelSweep, ProbabilitiesAreValid) {
  const data::Dataset ds = data::make_two_gaussians(40, 3, 2.0, 73);
  const auto model = make_model(GetParam(), 0.2);
  model->fit(ds.feature_matrix(), ds.labels());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const double p = model->predict_proba(ds.row(i));
    EXPECT_GE(p, 0.0) << GetParam();
    EXPECT_LE(p, 1.0) << GetParam();
    EXPECT_EQ(model->predict(ds.row(i)), p >= 0.5 ? 1 : 0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(PaperModels, ZooModelSweep,
                         ::testing::Values("Random Forest", "KNN", "Decision Tree",
                                           "XGBoost", "CatBoost", "SGD",
                                           "Logistic Regression", "SVC", "LGBM"));

}  // namespace
}  // namespace hdc::ml
