#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "ml/gbdt.hpp"
#include "ml/hist_gbdt.hpp"
#include "ml/ordered_gbdt.hpp"

namespace hdc::ml {
namespace {

struct Problem {
  Matrix X;
  Labels y;
};

Problem xor_problem() {
  const data::Dataset ds = data::make_xor(60, 0.2, 51);
  return {ds.feature_matrix(), ds.labels()};
}

Problem blob_problem() {
  const data::Dataset ds = data::make_two_gaussians(120, 4, 2.0, 52);
  return {ds.feature_matrix(), ds.labels()};
}

// ----- XGBoost-style exact GBDT -----

TEST(Gbdt, SolvesXor) {
  const Problem p = xor_problem();
  GbdtConfig config;
  config.n_rounds = 30;
  GbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.97);
}

TEST(Gbdt, SeparatesBlobs) {
  const Problem p = blob_problem();
  GbdtConfig config;
  config.n_rounds = 20;
  GbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.93);
}

TEST(Gbdt, MoreRoundsFitTighter) {
  const Problem p = blob_problem();
  GbdtConfig few;
  few.n_rounds = 2;
  few.learning_rate = 0.1;
  GbdtConfig many = few;
  many.n_rounds = 60;
  GbdtClassifier a(few);
  GbdtClassifier b(many);
  a.fit(p.X, p.y);
  b.fit(p.X, p.y);
  EXPECT_GE(b.accuracy(p.X, p.y) + 1e-9, a.accuracy(p.X, p.y));
}

TEST(Gbdt, RoundCountMatchesConfig) {
  const Problem p = blob_problem();
  GbdtConfig config;
  config.n_rounds = 7;
  GbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_EQ(model.round_count(), 7u);
}

TEST(Gbdt, BinaryFeaturesHandled) {
  Matrix X;
  Labels y;
  for (int i = 0; i < 60; ++i) {
    const int label = (i % 2) ^ (i % 3 == 0 ? 1 : 0);
    X.push_back({static_cast<double>(i % 2), static_cast<double>(i % 3 == 0)});
    y.push_back(label);
  }
  GbdtConfig config;
  config.n_rounds = 20;
  GbdtClassifier model(config);
  model.fit(X, y);
  EXPECT_GT(model.accuracy(X, y), 0.95);  // XOR of two binary columns
}

TEST(Gbdt, RejectsBadConfig) {
  GbdtConfig config;
  config.n_rounds = 0;
  EXPECT_THROW(GbdtClassifier{config}, std::invalid_argument);
  config.n_rounds = 10;
  config.max_depth = 0;
  EXPECT_THROW(GbdtClassifier{config}, std::invalid_argument);
}

TEST(Gbdt, NotFittedThrows) {
  const GbdtClassifier model;
  const std::vector<double> x = {0.0};
  EXPECT_THROW((void)model.predict_proba(x), std::logic_error);
}

// ----- LightGBM-style histogram GBDT -----

TEST(HistGbdt, SolvesXor) {
  const Problem p = xor_problem();
  HistGbdtConfig config;
  config.n_rounds = 40;
  config.min_data_in_leaf = 5;
  HistGbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.95);
}

TEST(HistGbdt, SeparatesBlobs) {
  const Problem p = blob_problem();
  HistGbdtConfig config;
  config.n_rounds = 30;
  HistGbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.92);
}

TEST(HistGbdt, BinningBoundsRespected) {
  HistGbdtConfig config;
  config.max_bins = 1;
  EXPECT_THROW(HistGbdtClassifier{config}, std::invalid_argument);
  config.max_bins = 256;
  EXPECT_THROW(HistGbdtClassifier{config}, std::invalid_argument);
}

TEST(HistGbdt, NumLeavesLowerBound) {
  HistGbdtConfig config;
  config.num_leaves = 1;
  EXPECT_THROW(HistGbdtClassifier{config}, std::invalid_argument);
}

TEST(HistGbdt, WorksWithFewDistinctValues) {
  Matrix X;
  Labels y;
  for (int i = 0; i < 50; ++i) {
    X.push_back({static_cast<double>(i % 2)});
    y.push_back(i % 2);
  }
  HistGbdtConfig config;
  config.n_rounds = 10;
  config.min_data_in_leaf = 5;
  HistGbdtClassifier model(config);
  model.fit(X, y);
  EXPECT_DOUBLE_EQ(model.accuracy(X, y), 1.0);
}

TEST(HistGbdt, ProbabilitiesInRange) {
  const Problem p = blob_problem();
  HistGbdtClassifier model;
  model.fit(p.X, p.y);
  for (std::size_t i = 0; i < 20; ++i) {
    const double prob = model.predict_proba(p.X[i]);
    EXPECT_GE(prob, 0.0);
    EXPECT_LE(prob, 1.0);
  }
}

// ----- CatBoost-style oblivious GBDT -----

TEST(OrderedGbdt, SolvesXor) {
  const Problem p = xor_problem();
  OrderedGbdtConfig config;
  config.n_rounds = 40;
  OrderedGbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.95);
}

TEST(OrderedGbdt, SeparatesBlobs) {
  const Problem p = blob_problem();
  OrderedGbdtConfig config;
  config.n_rounds = 30;
  OrderedGbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.92);
}

TEST(OrderedGbdt, DepthBounds) {
  OrderedGbdtConfig config;
  config.depth = 0;
  EXPECT_THROW(OrderedGbdtClassifier{config}, std::invalid_argument);
  config.depth = 17;
  EXPECT_THROW(OrderedGbdtClassifier{config}, std::invalid_argument);
}

TEST(OrderedGbdt, ObliviousStructureIsSymmetric) {
  // A depth-D oblivious tree asks the same D questions for every sample, so
  // two samples with identical answers must land in the same leaf: check via
  // equal probabilities for duplicated rows.
  const Problem p = blob_problem();
  OrderedGbdtConfig config;
  config.n_rounds = 10;
  OrderedGbdtClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_DOUBLE_EQ(model.predict_proba(p.X[0]), model.predict_proba(p.X[0]));
}

TEST(OrderedGbdt, HandlesAllBinaryColumns) {
  Matrix X;
  Labels y;
  for (int i = 0; i < 80; ++i) {
    const int a = i % 2;
    const int b = (i / 2) % 2;
    X.push_back({static_cast<double>(a), static_cast<double>(b)});
    y.push_back(a ^ b);
  }
  OrderedGbdtConfig config;
  config.n_rounds = 30;
  config.depth = 2;
  OrderedGbdtClassifier model(config);
  model.fit(X, y);
  EXPECT_DOUBLE_EQ(model.accuracy(X, y), 1.0);
}

TEST(AllBoosters, AgreeOnEasyProblem) {
  const data::Dataset ds = data::make_two_gaussians(100, 3, 5.0, 53);
  const Matrix X = ds.feature_matrix();
  const Labels& y = ds.labels();
  GbdtClassifier xgb;
  HistGbdtClassifier lgbm;
  OrderedGbdtClassifier cat;
  xgb.fit(X, y);
  lgbm.fit(X, y);
  cat.fit(X, y);
  EXPECT_GT(xgb.accuracy(X, y), 0.99);
  EXPECT_GT(lgbm.accuracy(X, y), 0.99);
  EXPECT_GT(cat.accuracy(X, y), 0.99);
}

}  // namespace
}  // namespace hdc::ml
