#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace hdc::core {
namespace {

TEST(SerializeBitVector, RoundTrip) {
  util::Rng rng(1);
  const hv::BitVector original = hv::BitVector::random(10000, rng);
  std::stringstream stream;
  write_bitvector(stream, original);
  EXPECT_EQ(read_bitvector(stream), original);
}

TEST(SerializeBitVector, OddSizesRoundTrip) {
  util::Rng rng(2);
  for (const std::size_t bits : {1u, 63u, 64u, 65u, 127u, 1000u}) {
    const hv::BitVector original = hv::BitVector::random(bits, rng);
    std::stringstream stream;
    write_bitvector(stream, original);
    EXPECT_EQ(read_bitvector(stream), original) << bits;
  }
}

TEST(SerializeBitVector, TruncatedInputThrows) {
  std::istringstream stream("128 deadbeef");  // needs 2 words, has 1
  EXPECT_THROW((void)read_bitvector(stream), std::runtime_error);
}

TEST(SerializeExtractor, RoundTripPreservesEncoding) {
  const data::Dataset ds = data::make_sylhet({30, 40, 3});
  ExtractorConfig config;
  config.dimensions = 2000;
  config.seed = 777;
  HdcFeatureExtractor original(config);
  original.fit(ds);

  std::stringstream stream;
  save_extractor(stream, original);
  const HdcFeatureExtractor loaded = load_extractor(stream);

  ASSERT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.dimensions(), original.dimensions());
  // The loaded extractor must encode identically — same seeds, same ranges.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded.encode_row(ds.row(i)), original.encode_row(ds.row(i))) << i;
  }
}

TEST(SerializeExtractor, PreservesColumnMetadata) {
  const data::Dataset ds = data::make_pima({40, 20, false, 0.05, 4});
  HdcFeatureExtractor original;
  original.fit(ds);
  std::stringstream stream;
  save_extractor(stream, original);
  const HdcFeatureExtractor loaded = load_extractor(stream);
  const auto& columns = loaded.column_encodings();
  ASSERT_EQ(columns.size(), 8u);
  EXPECT_EQ(columns[1].name, "Glucose");
  EXPECT_EQ(columns[1].kind, data::ColumnKind::kContinuous);
  EXPECT_DOUBLE_EQ(columns[1].lo, original.column_encodings()[1].lo);
}

TEST(SerializeExtractor, UnfittedSaveThrows) {
  const HdcFeatureExtractor extractor;
  std::ostringstream out;
  EXPECT_THROW(save_extractor(out, extractor), std::invalid_argument);
}

TEST(SerializeExtractor, BadMagicThrows) {
  std::istringstream in("not-a-model\n");
  EXPECT_THROW((void)load_extractor(in), std::runtime_error);
}

TEST(SerializeExtractor, TruncatedThrows) {
  std::istringstream in("hdc-extractor v1\n2000\n");
  EXPECT_THROW((void)load_extractor(in), std::runtime_error);
}

TEST(SerializeHamming, RoundTripPredictsIdentically) {
  util::Rng rng(5);
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    vectors.push_back(hv::BitVector::random(500, rng));
    labels.push_back(i % 2);
  }
  HammingClassifier original;
  original.fit(vectors, labels);

  std::stringstream stream;
  save_hamming(stream, original);
  const HammingClassifier loaded = load_hamming(stream);

  for (int q = 0; q < 10; ++q) {
    const hv::BitVector query = hv::BitVector::random(500, rng);
    EXPECT_EQ(loaded.predict(query), original.predict(query)) << q;
  }
}

TEST(SerializeHamming, PrototypeModeRoundTrip) {
  util::Rng rng(6);
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
  for (int i = 0; i < 16; ++i) {
    vectors.push_back(hv::BitVector::random(256, rng));
    labels.push_back(i % 2);
  }
  HammingClassifier original(HammingMode::kPrototype);
  original.fit(vectors, labels);
  std::stringstream stream;
  save_hamming(stream, original);
  const HammingClassifier loaded = load_hamming(stream);
  EXPECT_EQ(loaded.mode(), HammingMode::kPrototype);
  EXPECT_EQ(loaded.prototype(0), original.prototype(0));
  EXPECT_EQ(loaded.prototype(1), original.prototype(1));
}

TEST(SerializeHamming, UnfittedSaveThrows) {
  const HammingClassifier model;
  std::ostringstream out;
  EXPECT_THROW(save_hamming(out, model), std::invalid_argument);
}

TEST(SerializeHamming, BadInputThrows) {
  std::istringstream bad_magic("nope\n");
  EXPECT_THROW((void)load_hamming(bad_magic), std::runtime_error);
  std::istringstream bad_mode("hdc-hamming v1\nwarp\n1\n");
  EXPECT_THROW((void)load_hamming(bad_mode), std::runtime_error);
  std::istringstream empty_model("hdc-hamming v1\nnearest\n0\n");
  EXPECT_THROW((void)load_hamming(empty_model), std::runtime_error);
}

TEST(SerializeFiles, ExtractorFileRoundTrip) {
  const data::Dataset ds = data::make_sylhet({20, 20, 7});
  HdcFeatureExtractor original;
  original.fit(ds);
  const std::string path = ::testing::TempDir() + "/extractor.hdc";
  save_extractor_file(path, original);
  const HdcFeatureExtractor loaded = load_extractor_file(path);
  EXPECT_EQ(loaded.encode_row(ds.row(0)), original.encode_row(ds.row(0)));
}

TEST(SerializeFiles, MissingFileThrows) {
  EXPECT_THROW((void)load_extractor_file("/no/such/file.hdc"), std::runtime_error);
  EXPECT_THROW((void)load_hamming_file("/no/such/file.hdc"), std::runtime_error);
}

}  // namespace
}  // namespace hdc::core
