#include "core/serialize.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace hdc::core {
namespace {

TEST(SerializeBitVector, RoundTrip) {
  util::Rng rng(1);
  const hv::BitVector original = hv::BitVector::random(10000, rng);
  std::stringstream stream;
  write_bitvector(stream, original);
  EXPECT_EQ(read_bitvector(stream), original);
}

TEST(SerializeBitVector, OddSizesRoundTrip) {
  util::Rng rng(2);
  for (const std::size_t bits : {1u, 63u, 64u, 65u, 127u, 1000u}) {
    const hv::BitVector original = hv::BitVector::random(bits, rng);
    std::stringstream stream;
    write_bitvector(stream, original);
    EXPECT_EQ(read_bitvector(stream), original) << bits;
  }
}

TEST(SerializeBitVector, TruncatedInputThrows) {
  // Needs 2 words; the second is missing entirely.
  std::istringstream stream("128 00000000deadbeef");
  EXPECT_THROW((void)read_bitvector(stream), std::runtime_error);
}

TEST(SerializeBitVector, OddLengthHexThrows) {
  // Words are fixed-width 16-hex-digit tokens; a short (odd-length) word is
  // a short read / hand-edited file, not something to zero-extend silently.
  std::istringstream stream("64 deadbeef");
  EXPECT_THROW((void)read_bitvector(stream), std::runtime_error);
  std::istringstream fifteen("64 00000000deadbee");
  EXPECT_THROW((void)read_bitvector(fifteen), std::runtime_error);
  std::istringstream seventeen("64 000000000deadbeef");
  EXPECT_THROW((void)read_bitvector(seventeen), std::runtime_error);
}

TEST(SerializeBitVector, HexGarbageThrows) {
  std::istringstream uppercase("64 00000000DEADBEEF");
  EXPECT_THROW((void)read_bitvector(uppercase), std::runtime_error);
  std::istringstream stray("64 0000000000g0beef");
  EXPECT_THROW((void)read_bitvector(stray), std::runtime_error);
}

TEST(SerializeBitVector, NonzeroPaddingBitsThrow) {
  // 60-bit vector: the top 4 bits of the single word must be zero.
  std::istringstream padded("60 f000000000000001");
  EXPECT_THROW((void)read_bitvector(padded), std::runtime_error);
  std::istringstream clean("60 0000000000000001");
  EXPECT_EQ(read_bitvector(clean).popcount(), 1u);
}

TEST(SerializeBitVector, TrailingDataThrows) {
  std::istringstream stream("64 0000000000000001 0000000000000002");
  EXPECT_THROW((void)read_bitvector(stream), std::runtime_error);
}

TEST(SerializeBitVector, BadSizeThrows) {
  std::istringstream negative("-8 0000000000000001");
  EXPECT_THROW((void)read_bitvector(negative), std::runtime_error);
  std::istringstream huge("999999999999 0000000000000001");
  EXPECT_THROW((void)read_bitvector(huge), std::runtime_error);
  std::istringstream garbage("sixty-four 0000000000000001");
  EXPECT_THROW((void)read_bitvector(garbage), std::runtime_error);
}

TEST(SerializeExtractor, RoundTripPreservesEncoding) {
  const data::Dataset ds = data::make_sylhet({30, 40, 3});
  ExtractorConfig config;
  config.dimensions = 2000;
  config.seed = 777;
  HdcFeatureExtractor original(config);
  original.fit(ds);

  std::stringstream stream;
  save_extractor(stream, original);
  const HdcFeatureExtractor loaded = load_extractor(stream);

  ASSERT_TRUE(loaded.fitted());
  EXPECT_EQ(loaded.dimensions(), original.dimensions());
  // The loaded extractor must encode identically — same seeds, same ranges.
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded.encode_row(ds.row(i)), original.encode_row(ds.row(i))) << i;
  }
}

TEST(SerializeExtractor, PreservesColumnMetadata) {
  const data::Dataset ds = data::make_pima({40, 20, false, 0.05, 4});
  HdcFeatureExtractor original;
  original.fit(ds);
  std::stringstream stream;
  save_extractor(stream, original);
  const HdcFeatureExtractor loaded = load_extractor(stream);
  const auto& columns = loaded.column_encodings();
  ASSERT_EQ(columns.size(), 8u);
  EXPECT_EQ(columns[1].name, "Glucose");
  EXPECT_EQ(columns[1].kind, data::ColumnKind::kContinuous);
  EXPECT_DOUBLE_EQ(columns[1].lo, original.column_encodings()[1].lo);
}

TEST(SerializeExtractor, UnfittedSaveThrows) {
  const HdcFeatureExtractor extractor;
  std::ostringstream out;
  EXPECT_THROW(save_extractor(out, extractor), std::invalid_argument);
}

TEST(SerializeExtractor, BadMagicThrows) {
  std::istringstream in("not-a-model\n");
  EXPECT_THROW((void)load_extractor(in), std::runtime_error);
}

TEST(SerializeExtractor, TruncatedThrows) {
  std::istringstream in("hdc-extractor v1\n2000\n");
  EXPECT_THROW((void)load_extractor(in), std::runtime_error);
}

TEST(SerializeHamming, RoundTripPredictsIdentically) {
  util::Rng rng(5);
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
  for (int i = 0; i < 20; ++i) {
    vectors.push_back(hv::BitVector::random(500, rng));
    labels.push_back(i % 2);
  }
  HammingClassifier original;
  original.fit(vectors, labels);

  std::stringstream stream;
  save_hamming(stream, original);
  const HammingClassifier loaded = load_hamming(stream);

  for (int q = 0; q < 10; ++q) {
    const hv::BitVector query = hv::BitVector::random(500, rng);
    EXPECT_EQ(loaded.predict(query), original.predict(query)) << q;
  }
}

TEST(SerializeHamming, PrototypeModeRoundTrip) {
  util::Rng rng(6);
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
  for (int i = 0; i < 16; ++i) {
    vectors.push_back(hv::BitVector::random(256, rng));
    labels.push_back(i % 2);
  }
  HammingClassifier original(HammingMode::kPrototype);
  original.fit(vectors, labels);
  std::stringstream stream;
  save_hamming(stream, original);
  const HammingClassifier loaded = load_hamming(stream);
  EXPECT_EQ(loaded.mode(), HammingMode::kPrototype);
  EXPECT_EQ(loaded.prototype(0), original.prototype(0));
  EXPECT_EQ(loaded.prototype(1), original.prototype(1));
}

TEST(SerializeHamming, UnfittedSaveThrows) {
  const HammingClassifier model;
  std::ostringstream out;
  EXPECT_THROW(save_hamming(out, model), std::invalid_argument);
}

TEST(SerializeHamming, BadInputThrows) {
  std::istringstream bad_magic("nope\n");
  EXPECT_THROW((void)load_hamming(bad_magic), std::runtime_error);
  std::istringstream bad_mode("hdc-hamming v2\nwarp\n1\n");
  EXPECT_THROW((void)load_hamming(bad_mode), std::runtime_error);
  std::istringstream empty_model("hdc-hamming v2\nnearest\n0\n");
  EXPECT_THROW((void)load_hamming(empty_model), std::runtime_error);
}

TEST(SerializeHamming, OldVersionMagicThrows) {
  // v1 files used variable-width hex words; the strict v2 reader refuses the
  // old magic instead of misparsing the body.
  std::istringstream v1("hdc-hamming v1\nnearest\n1\n0\n64 deadbeef\n");
  EXPECT_THROW((void)load_hamming(v1), std::runtime_error);
}

TEST(SerializeHamming, ShortReadThrows) {
  // A valid header whose last vector line got cut mid-word (the classic
  // partial-download failure) must be a clean error, not a silent zero-fill.
  util::Rng rng(7);
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
  for (int i = 0; i < 4; ++i) {
    vectors.push_back(hv::BitVector::random(192, rng));
    labels.push_back(i % 2);
  }
  HammingClassifier model;
  model.fit(vectors, labels);
  std::ostringstream out;
  save_hamming(out, model);
  const std::string full = out.str();
  // Chop inside the final hex word: odd-length token -> strict reader throws.
  std::istringstream truncated(full.substr(0, full.size() - 9));
  EXPECT_THROW((void)load_hamming(truncated), std::runtime_error);
}

TEST(SerializeFiles, ExtractorFileRoundTrip) {
  const data::Dataset ds = data::make_sylhet({20, 20, 7});
  HdcFeatureExtractor original;
  original.fit(ds);
  const std::string path = ::testing::TempDir() + "/extractor.hdc";
  save_extractor_file(path, original);
  const HdcFeatureExtractor loaded = load_extractor_file(path);
  EXPECT_EQ(loaded.encode_row(ds.row(0)), original.encode_row(ds.row(0)));
}

TEST(SerializeFiles, MissingFileThrows) {
  EXPECT_THROW((void)load_extractor_file("/no/such/file.hdc"), std::runtime_error);
  EXPECT_THROW((void)load_hamming_file("/no/such/file.hdc"), std::runtime_error);
}

}  // namespace
}  // namespace hdc::core
