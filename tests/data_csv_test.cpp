#include "data/csv.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace hdc::data {
namespace {

TEST(ReadCsv, BasicNumericTable) {
  std::istringstream in("a,b,label\n1,2,0\n3,4,1\n");
  const Dataset ds = read_csv(in);
  EXPECT_EQ(ds.n_rows(), 2u);
  EXPECT_EQ(ds.n_cols(), 2u);
  EXPECT_DOUBLE_EQ(ds.value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(ds.value(1, 1), 4.0);
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(1), 1);
}

TEST(ReadCsv, MissingTokens) {
  std::istringstream in("a,b,label\n,NA,0\nnan,?,1\n5,6,0\n");
  const Dataset ds = read_csv(in);
  EXPECT_TRUE(Dataset::is_missing(ds.value(0, 0)));
  EXPECT_TRUE(Dataset::is_missing(ds.value(0, 1)));
  EXPECT_TRUE(Dataset::is_missing(ds.value(1, 0)));
  EXPECT_TRUE(Dataset::is_missing(ds.value(1, 1)));
  EXPECT_DOUBLE_EQ(ds.value(2, 0), 5.0);
}

TEST(ReadCsv, SylhetStyleYesNo) {
  std::istringstream in(
      "Age,Polyuria,Gender,class\n40,Yes,Male,Positive\n55,No,Female,Negative\n");
  const Dataset ds = read_csv(in);
  EXPECT_DOUBLE_EQ(ds.value(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ds.value(0, 2), 1.0);
  EXPECT_DOUBLE_EQ(ds.value(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(ds.value(1, 2), 0.0);
  EXPECT_EQ(ds.label(0), 1);
  EXPECT_EQ(ds.label(1), 0);
}

TEST(ReadCsv, BinaryKindInference) {
  std::istringstream in("cont,bin,label\n1.5,1,0\n2.5,0,1\n");
  const Dataset ds = read_csv(in);
  EXPECT_EQ(ds.column(0).kind, ColumnKind::kContinuous);
  EXPECT_EQ(ds.column(1).kind, ColumnKind::kBinary);
}

TEST(ReadCsv, ExplicitLabelColumn) {
  std::istringstream in("label,x\n1,10\n0,20\n");
  CsvOptions options;
  options.label_column = "label";
  const Dataset ds = read_csv(in, options);
  EXPECT_EQ(ds.n_cols(), 1u);
  EXPECT_DOUBLE_EQ(ds.value(0, 0), 10.0);
  EXPECT_EQ(ds.label(0), 1);
}

TEST(ReadCsv, UnknownLabelColumnThrows) {
  std::istringstream in("a,b\n1,2\n");
  CsvOptions options;
  options.label_column = "nope";
  EXPECT_THROW((void)read_csv(in, options), std::runtime_error);
}

TEST(ReadCsv, ZeroAsMissingForSelectedColumns) {
  std::istringstream in("Glucose,Age,label\n0,30,1\n120,0,0\n");
  CsvOptions options;
  options.zero_is_missing = {"Glucose"};
  const Dataset ds = read_csv(in, options);
  EXPECT_TRUE(Dataset::is_missing(ds.value(0, 0)));
  EXPECT_DOUBLE_EQ(ds.value(1, 1), 0.0);  // Age zero stays zero
}

TEST(ReadCsv, RaggedRowThrows) {
  std::istringstream in("a,b,label\n1,2,0\n1,0\n");
  EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(ReadCsv, BadCellThrows) {
  std::istringstream in("a,label\nxyz,0\n");
  EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(ReadCsv, EmptyInputThrows) {
  std::istringstream in("");
  EXPECT_THROW((void)read_csv(in), std::runtime_error);
}

TEST(ReadCsv, SkipsBlankLines) {
  std::istringstream in("a,label\n1,0\n\n2,1\n");
  const Dataset ds = read_csv(in);
  EXPECT_EQ(ds.n_rows(), 2u);
}

TEST(WriteCsv, RoundTripsThroughReader) {
  Dataset ds({{"x", ColumnKind::kContinuous}, {"flag", ColumnKind::kBinary}});
  ds.add_row(std::vector<double>{1.25, 1.0}, 1);
  ds.add_row(std::vector<double>{std::nan(""), 0.0}, 0);
  std::ostringstream out;
  write_csv(out, ds);

  std::istringstream in(out.str());
  const Dataset back = read_csv(in);
  EXPECT_EQ(back.n_rows(), 2u);
  EXPECT_EQ(back.n_cols(), 2u);
  EXPECT_NEAR(back.value(0, 0), 1.25, 1e-9);
  EXPECT_TRUE(Dataset::is_missing(back.value(1, 0)));
  EXPECT_EQ(back.label(0), 1);
  EXPECT_EQ(back.label(1), 0);
}

TEST(ReadCsvFile, MissingFileThrows) {
  EXPECT_THROW((void)read_csv_file("/nonexistent/path.csv"), std::runtime_error);
}

}  // namespace
}  // namespace hdc::data
