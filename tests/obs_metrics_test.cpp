#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace hdc::obs {
namespace {

/// Every test runs with recording on and a zeroed registry, and restores the
/// process default (off) afterwards so other suites see a quiet registry.
class ObsMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_metrics();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_metrics();
  }
};

TEST_F(ObsMetricsTest, InstrumentationIsCompiledIn) {
  // The default build keeps the recording paths; -DHDC_OBS_DISABLE turns
  // kCompiledIn false and enabled() into a constant the optimiser removes.
  EXPECT_TRUE(kCompiledIn);
  EXPECT_TRUE(enabled());
}

TEST_F(ObsMetricsTest, CounterAddsAndSumsShards) {
  Counter& c = counter("test.counter.basic");
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST_F(ObsMetricsTest, ConcurrentIncrementsSumExactly) {
  Counter& c = counter("test.counter.concurrent");
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIncrements = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kIncrements; ++i) c.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kIncrements);
}

TEST_F(ObsMetricsTest, DisabledRecordingIsInvisible) {
  Counter& c = counter("test.counter.disabled");
  Gauge& g = gauge("test.gauge.disabled");
  Histogram& h = histogram("test.hist.disabled");
  set_enabled(false);
  c.add(100);
  g.add(5);
  h.record(0.5);
  set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.max_value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST_F(ObsMetricsTest, GaugeTracksValueAndHighWaterMark) {
  Gauge& g = gauge("test.gauge.basic");
  g.add(3);
  g.add(4);   // 7 — peak
  g.add(-5);  // 2
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max_value(), 7);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.max_value(), 7);
}

TEST_F(ObsMetricsTest, ConcurrentGaugeNetsToZero) {
  Gauge& g = gauge("test.gauge.concurrent");
  constexpr std::size_t kThreads = 4;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (std::size_t i = 0; i < 10000; ++i) {
        g.add(1);
        g.add(-1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(g.value(), 0);
  EXPECT_GE(g.max_value(), 1);
  EXPECT_LE(g.max_value(), static_cast<std::int64_t>(kThreads));
}

TEST_F(ObsMetricsTest, HistogramBucketBoundariesAreInclusiveUpper) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  Histogram& h = histogram("test.hist.bounds", bounds);
  ASSERT_EQ(h.bounds(), bounds);
  // Bucket b counts values <= bounds[b]; the 4th bucket is overflow.
  h.record(0.5);
  h.record(1.0);  // boundary lands in bucket 0
  h.record(1.5);
  h.record(2.0);  // bucket 1
  h.record(3.0);
  h.record(100.0);  // overflow
  const std::vector<std::uint64_t> expected = {2, 2, 1, 1};
  EXPECT_EQ(h.bucket_counts(), expected);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 108.0);
}

TEST_F(ObsMetricsTest, HistogramConcurrentRecordsSumExactly) {
  Histogram& h = histogram("test.hist.concurrent", std::vector<double>{0.5});
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kRecords = 10000;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (std::size_t i = 0; i < kRecords; ++i) h.record(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), kThreads * kRecords);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads * kRecords));
  EXPECT_EQ(h.bucket_counts().back(), kThreads * kRecords);  // all overflow
}

TEST_F(ObsMetricsTest, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::span<const double> bounds = default_latency_bounds();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST_F(ObsMetricsTest, RegistryReturnsSameInstrumentForSameName) {
  EXPECT_EQ(&counter("test.same"), &counter("test.same"));
  EXPECT_EQ(&gauge("test.same"), &gauge("test.same"));
  EXPECT_EQ(&histogram("test.same"), &histogram("test.same"));
  EXPECT_NE(&counter("test.same"), &counter("test.other"));
}

TEST_F(ObsMetricsTest, SnapshotCarriesEveryInstrumentAndResetZeroes) {
  counter("test.snap.counter").add(7);
  gauge("test.snap.gauge").add(3);
  histogram("test.snap.hist").record(0.25);

  const MetricsSnapshot snap = snapshot();
  EXPECT_EQ(snap.counter_value("test.snap.counter"), 7u);
  EXPECT_EQ(snap.gauge_max("test.snap.gauge"), 3);
  const HistogramSample* hist = snap.histogram("test.snap.hist");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->count, 1u);
  EXPECT_DOUBLE_EQ(hist->sum, 0.25);
  EXPECT_EQ(hist->bucket_counts.size(), hist->bounds.size() + 1);

  reset_metrics();
  const MetricsSnapshot zeroed = snapshot();
  EXPECT_EQ(zeroed.counter_value("test.snap.counter"), 0u);
  EXPECT_EQ(zeroed.gauge_max("test.snap.gauge"), 0);
  const HistogramSample* zeroed_hist = zeroed.histogram("test.snap.hist");
  ASSERT_NE(zeroed_hist, nullptr);  // names survive a reset
  EXPECT_EQ(zeroed_hist->count, 0u);
}

TEST_F(ObsMetricsTest, SnapshotMissingNamesDefaultSafely) {
  const MetricsSnapshot snap = snapshot();
  EXPECT_EQ(snap.counter_value("test.never.registered"), 0u);
  EXPECT_EQ(snap.gauge_max("test.never.registered"), 0);
  EXPECT_EQ(snap.histogram("test.never.registered"), nullptr);
}

}  // namespace
}  // namespace hdc::obs
