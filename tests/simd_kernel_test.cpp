// Property tests for the SIMD kernel dispatch layer (src/simd).
//
// Every compiled tier must match the scalar tier bit-exactly on randomized
// inputs, including widths that are not a multiple of any vector register
// (the canonical 10,000-bit hypervector is 157 words — 39 AVX2 vectors
// plus one word, 19 AVX-512 vectors plus five words). The scalar reference
// here is computed with naive loops, NOT through the kernel table, so a bug
// in the scalar tier cannot self-validate.
#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "eval/cross_validation.hpp"
#include "hv/bitvector.hpp"
#include "hv/ops.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"

namespace {

using hdc::simd::Tier;

/// Restores the dispatch tier active at construction time on scope exit, so
/// tests that force tiers cannot leak into each other.
class TierGuard {
 public:
  TierGuard() : saved_(hdc::simd::active_tier()) {}
  ~TierGuard() { hdc::simd::set_tier(saved_); }

 private:
  Tier saved_;
};

std::vector<std::uint64_t> random_words(std::size_t n, hdc::util::Rng& rng) {
  std::vector<std::uint64_t> out(n);
  for (auto& w : out) w = rng();
  return out;
}

std::size_t naive_popcount(const std::vector<std::uint64_t>& words) {
  std::size_t total = 0;
  for (const std::uint64_t w : words) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

// Word counts straddling the AVX2 (4-word) and AVX-512 (8-word) vector
// widths, Harley–Seal block boundaries (64 words per AVX2 block), and the
// canonical 10,000-bit = 157-word hypervector.
const std::size_t kWordCounts[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 31,
                                   39, 63, 64, 65, 127, 128, 157, 200};

TEST(SimdDispatch, ScalarAlwaysSupported) {
  EXPECT_TRUE(hdc::simd::tier_compiled(Tier::kScalar));
  EXPECT_TRUE(hdc::simd::tier_supported(Tier::kScalar));
  const std::vector<Tier> tiers = hdc::simd::supported_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), Tier::kScalar);
  EXPECT_TRUE(std::is_sorted(tiers.begin(), tiers.end()));
}

TEST(SimdDispatch, TierNameParseRoundTrip) {
  for (const Tier t : {Tier::kScalar, Tier::kAvx2, Tier::kAvx512}) {
    const auto parsed = hdc::simd::parse_tier(hdc::simd::tier_name(t));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, t);
  }
  EXPECT_FALSE(hdc::simd::parse_tier("avx1024").has_value());
  EXPECT_FALSE(hdc::simd::parse_tier("").has_value());
  EXPECT_FALSE(hdc::simd::parse_tier("Scalar").has_value());
}

// set_tier / active_tier round trip over every supported tier — the same
// override surface the HDC_SIMD environment variable drives at startup.
TEST(SimdDispatch, SetTierRoundTrip) {
  TierGuard guard;
  for (const Tier t : hdc::simd::supported_tiers()) {
    hdc::simd::set_tier(t);
    EXPECT_EQ(hdc::simd::active_tier(), t);
    EXPECT_EQ(&hdc::simd::active(), &hdc::simd::kernels(t));
  }
  hdc::simd::reset_tier();
  EXPECT_EQ(hdc::simd::active_tier(), hdc::simd::supported_tiers().back());
}

TEST(SimdDispatch, UnsupportedTierThrows) {
  for (const Tier t : {Tier::kAvx2, Tier::kAvx512}) {
    if (hdc::simd::tier_supported(t)) continue;
    EXPECT_THROW((void)hdc::simd::kernels(t), std::invalid_argument);
    EXPECT_THROW(hdc::simd::set_tier(t), std::invalid_argument);
  }
}

TEST(SimdKernels, HammingMatchesNaiveAcrossTiers) {
  hdc::util::Rng rng(2023);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> a = random_words(words, rng);
    const std::vector<std::uint64_t> b = random_words(words, rng);
    std::size_t expected = 0;
    for (std::size_t i = 0; i < words; ++i) {
      expected += static_cast<std::size_t>(std::popcount(a[i] ^ b[i]));
    }
    for (const Tier t : hdc::simd::supported_tiers()) {
      EXPECT_EQ(hdc::simd::kernels(t).hamming(a.data(), b.data(), words), expected)
          << "tier=" << hdc::simd::tier_name(t) << " words=" << words;
    }
  }
}

TEST(SimdKernels, HammingExtremes) {
  const std::vector<std::uint64_t> zeros(157, 0ULL);
  const std::vector<std::uint64_t> ones(157, ~0ULL);
  for (const Tier t : hdc::simd::supported_tiers()) {
    const auto& k = hdc::simd::kernels(t);
    EXPECT_EQ(k.hamming(zeros.data(), zeros.data(), 157), 0u);
    EXPECT_EQ(k.hamming(zeros.data(), ones.data(), 157), 157u * 64u);
    EXPECT_EQ(k.popcount(ones.data(), 157), 157u * 64u);
    EXPECT_EQ(k.popcount(zeros.data(), 157), 0u);
  }
}

TEST(SimdKernels, AndPopcountMatchesNaiveAcrossTiers) {
  hdc::util::Rng rng(31);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> a = random_words(words, rng);
    const std::vector<std::uint64_t> b = random_words(words, rng);
    std::size_t expected_and = 0;
    std::size_t expected_andnot = 0;
    for (std::size_t i = 0; i < words; ++i) {
      expected_and += static_cast<std::size_t>(std::popcount(a[i] & b[i]));
      expected_andnot += static_cast<std::size_t>(std::popcount(~a[i] & b[i]));
    }
    for (const Tier t : hdc::simd::supported_tiers()) {
      const auto& k = hdc::simd::kernels(t);
      EXPECT_EQ(k.and_popcount(a.data(), b.data(), words), expected_and)
          << "tier=" << hdc::simd::tier_name(t) << " words=" << words;
      EXPECT_EQ(k.andnot_popcount(a.data(), b.data(), words), expected_andnot)
          << "tier=" << hdc::simd::tier_name(t) << " words=" << words;
    }
  }
}

TEST(SimdKernels, AndPopcountExtremes) {
  const std::vector<std::uint64_t> zeros(157, 0ULL);
  const std::vector<std::uint64_t> ones(157, ~0ULL);
  for (const Tier t : hdc::simd::supported_tiers()) {
    const auto& k = hdc::simd::kernels(t);
    EXPECT_EQ(k.and_popcount(ones.data(), ones.data(), 157), 157u * 64u);
    EXPECT_EQ(k.and_popcount(zeros.data(), ones.data(), 157), 0u);
    // andnot is popcount(~a & b): complement of all-zero selects everything.
    EXPECT_EQ(k.andnot_popcount(zeros.data(), ones.data(), 157), 157u * 64u);
    EXPECT_EQ(k.andnot_popcount(ones.data(), ones.data(), 157), 0u);
    EXPECT_EQ(k.andnot_popcount(ones.data(), zeros.data(), 157), 0u);
  }
}

// The split-search identity the tree kernels rely on: AND + ANDNOT against
// the same mask partition the mask's population exactly.
TEST(SimdKernels, AndPlusAndnotPartitionsMask) {
  hdc::util::Rng rng(63);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> col = random_words(words, rng);
    const std::vector<std::uint64_t> mask = random_words(words, rng);
    for (const Tier t : hdc::simd::supported_tiers()) {
      const auto& k = hdc::simd::kernels(t);
      EXPECT_EQ(k.and_popcount(col.data(), mask.data(), words) +
                    k.andnot_popcount(col.data(), mask.data(), words),
                k.popcount(mask.data(), words))
          << "tier=" << hdc::simd::tier_name(t) << " words=" << words;
    }
  }
}

// sketch_scan is the batched form of per-row hamming over a contiguous
// block; every tier must match a naive per-row scalar loop bit-exactly,
// including ragged block tails (n not a multiple of any rows-per-vector
// grouping) and row widths off every vector boundary.
TEST(SimdKernels, SketchScanMatchesPerRowNaiveAcrossTiers) {
  hdc::util::Rng rng(4099);
  const std::size_t kRowWidths[] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 16, 33};
  const std::size_t kBlockRows[] = {1, 2, 3, 4, 5, 7, 8, 9, 31, 64, 65, 200};
  for (const std::size_t words : kRowWidths) {
    for (const std::size_t n : kBlockRows) {
      const std::vector<std::uint64_t> query = random_words(words, rng);
      const std::vector<std::uint64_t> block = random_words(n * words, rng);
      std::vector<std::uint32_t> expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::uint32_t d = 0;
        for (std::size_t w = 0; w < words; ++w) {
          d += static_cast<std::uint32_t>(
              std::popcount(query[w] ^ block[i * words + w]));
        }
        expected[i] = d;
      }
      for (const Tier t : hdc::simd::supported_tiers()) {
        std::vector<std::uint32_t> out(n, 0xdeadbeefu);
        hdc::simd::kernels(t).sketch_scan(query.data(), block.data(), n, words,
                                          out.data());
        EXPECT_EQ(out, expected)
            << "tier=" << hdc::simd::tier_name(t) << " words=" << words
            << " n=" << n;
      }
    }
  }
}

TEST(SimdKernels, SketchScanExtremes) {
  const std::vector<std::uint64_t> zeros(4, 0ULL);
  const std::vector<std::uint64_t> block(5 * 4, ~0ULL);
  for (const Tier t : hdc::simd::supported_tiers()) {
    std::vector<std::uint32_t> out(5, 0u);
    hdc::simd::kernels(t).sketch_scan(zeros.data(), block.data(), 5, 4,
                                      out.data());
    for (const std::uint32_t d : out) EXPECT_EQ(d, 4u * 64u);
    hdc::simd::kernels(t).sketch_scan(block.data(), block.data(), 5, 4,
                                      out.data());
    for (const std::uint32_t d : out) EXPECT_EQ(d, 0u);
  }
}

TEST(SimdKernels, PopcountMatchesNaiveAcrossTiers) {
  hdc::util::Rng rng(7);
  for (const std::size_t words : kWordCounts) {
    const std::vector<std::uint64_t> a = random_words(words, rng);
    const std::size_t expected = naive_popcount(a);
    for (const Tier t : hdc::simd::supported_tiers()) {
      EXPECT_EQ(hdc::simd::kernels(t).popcount(a.data(), words), expected)
          << "tier=" << hdc::simd::tier_name(t) << " words=" << words;
    }
  }
}

TEST(SimdKernels, MajorityMatchesNaiveAcrossTiers) {
  hdc::util::Rng rng(42);
  // Odd and even row counts (ties only exist for even n), crossing the
  // plane-count boundaries of the bit-sliced counters.
  for (const std::size_t n : {1u, 2u, 3u, 4u, 5u, 8u, 9u, 16u, 17u}) {
    for (const std::size_t words : {1u, 4u, 7u, 39u, 157u}) {
      std::vector<std::vector<std::uint64_t>> rows;
      std::vector<const std::uint64_t*> row_ptrs;
      for (std::size_t r = 0; r < n; ++r) {
        rows.push_back(random_words(words, rng));
      }
      for (const auto& r : rows) row_ptrs.push_back(r.data());

      for (const bool tie_to_one : {false, true}) {
        // Naive per-bit reference.
        std::vector<std::uint64_t> expected(words, 0ULL);
        for (std::size_t bit = 0; bit < words * 64; ++bit) {
          std::size_t count = 0;
          for (const auto& r : rows) count += (r[bit / 64] >> (bit % 64)) & 1ULL;
          const bool set = 2 * count > n || (tie_to_one && 2 * count == n);
          if (set) expected[bit / 64] |= 1ULL << (bit % 64);
        }
        for (const Tier t : hdc::simd::supported_tiers()) {
          std::vector<std::uint64_t> out(words, 0xdeadbeefULL);
          hdc::simd::kernels(t).majority(row_ptrs.data(), n, words, out.data(),
                                         tie_to_one);
          EXPECT_EQ(out, expected)
              << "tier=" << hdc::simd::tier_name(t) << " n=" << n
              << " words=" << words << " tie=" << tie_to_one;
        }
      }
    }
  }
}

// End-to-end dispatch-tier invariance: the full encode + LOOCV pipeline must
// produce bit-identical hypervectors and confusion matrices on every tier —
// the dispatch-layer extension of the thread-count determinism gate.
TEST(SimdPipeline, EncodeAndLoocvIdenticalAcrossTiers) {
  TierGuard guard;
  hdc::data::PimaConfig config;
  config.n_negative = 64;  // keep the per-tier LOOCV cheap
  config.n_positive = 32;
  config.seed = 11;
  const hdc::data::Dataset ds =
      hdc::data::impute_class_median(hdc::data::make_pima(config));

  hdc::core::ExtractorConfig extractor_config;
  extractor_config.dimensions = 10000;
  hdc::core::HdcFeatureExtractor extractor(extractor_config);
  extractor.fit(ds);

  std::vector<hdc::hv::BitVector> reference;
  hdc::eval::BinaryMetrics reference_metrics;
  bool have_reference = false;
  for (const Tier t : hdc::simd::supported_tiers()) {
    hdc::simd::set_tier(t);
    const std::vector<hdc::hv::BitVector> vectors = extractor.transform(ds);
    const hdc::eval::BinaryMetrics metrics =
        hdc::eval::hamming_loocv(vectors, ds.labels()).metrics;
    if (!have_reference) {
      reference = vectors;
      reference_metrics = metrics;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(vectors, reference) << "tier=" << hdc::simd::tier_name(t);
    EXPECT_EQ(metrics.confusion.tp, reference_metrics.confusion.tp);
    EXPECT_EQ(metrics.confusion.tn, reference_metrics.confusion.tn);
    EXPECT_EQ(metrics.confusion.fp, reference_metrics.confusion.fp);
    EXPECT_EQ(metrics.confusion.fn, reference_metrics.confusion.fn);
  }
}

// BitVector's own popcount/hamming route through the dispatch table; check
// them against bit-by-bit counting on a non-word-multiple size.
TEST(SimdPipeline, BitVectorOpsMatchBitLoopOnEveryTier) {
  TierGuard guard;
  hdc::util::Rng rng(99);
  const std::size_t bits = 10000;
  const hdc::hv::BitVector a = hdc::hv::BitVector::random(bits, rng);
  const hdc::hv::BitVector b = hdc::hv::BitVector::random(bits, rng);
  std::size_t pop = 0, ham = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    pop += a.get(i) ? 1 : 0;
    ham += a.get(i) != b.get(i) ? 1 : 0;
  }
  for (const Tier t : hdc::simd::supported_tiers()) {
    hdc::simd::set_tier(t);
    EXPECT_EQ(a.popcount(), pop) << "tier=" << hdc::simd::tier_name(t);
    EXPECT_EQ(a.hamming(b), ham) << "tier=" << hdc::simd::tier_name(t);
  }
}

}  // namespace
