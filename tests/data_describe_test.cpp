#include "data/describe.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "data/synthetic.hpp"

namespace hdc::data {
namespace {

TEST(Describe, ContainsShapeAndClassBalance) {
  const Dataset ds = make_sylhet({10, 15, 1});
  const std::string report = describe(ds);
  EXPECT_NE(report.find("rows: 25"), std::string::npos);
  EXPECT_NE(report.find("columns: 16"), std::string::npos);
  EXPECT_NE(report.find("10 negative / 15 positive"), std::string::npos);
}

TEST(Describe, ListsEveryColumn) {
  const Dataset ds = make_pima({10, 10, false, 0.0, 2});
  const std::string report = describe(ds);
  for (const char* name : {"Pregnancies", "Glucose", "BloodPressure",
                           "SkinThickness", "Insulin", "BMI", "DPF", "Age"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
}

TEST(Describe, ReportsColumnKinds) {
  const Dataset ds = make_sylhet({5, 5, 3});
  const std::string report = describe(ds);
  EXPECT_NE(report.find("continuous"), std::string::npos);  // Age
  EXPECT_NE(report.find("binary"), std::string::npos);      // symptoms
}

TEST(Describe, CountsMissing) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
  ds.add_row(std::vector<double>{1.0}, 0);
  ds.add_row(std::vector<double>{kNaN}, 1);
  const std::string report = describe(ds);
  EXPECT_NE(report.find("rows with missing: 1"), std::string::npos);
}

TEST(Describe, SingleClassColumnsShowDash) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  ds.add_row(std::vector<double>{1.0}, 0);
  ds.add_row(std::vector<double>{2.0}, 0);
  const std::string report = describe(ds);
  EXPECT_NE(report.find(" - "), std::string::npos);  // no positive rows
}

}  // namespace
}  // namespace hdc::data
