#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace hdc::util {
namespace {

Cli make_cli(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, FlagWithSeparateValue) {
  const Cli cli = make_cli({"--dim", "20000"});
  EXPECT_EQ(cli.get_int("--dim", 0), 20000);
}

TEST(Cli, FlagWithEqualsValue) {
  const Cli cli = make_cli({"--seed=99"});
  EXPECT_EQ(cli.get_uint("--seed", 0), 99u);
}

TEST(Cli, MissingFlagUsesFallback) {
  const Cli cli = make_cli({});
  EXPECT_EQ(cli.get_int("--dim", 10000), 10000);
  EXPECT_EQ(cli.get_string("--name", "default"), "default");
  EXPECT_DOUBLE_EQ(cli.get_double("--frac", 0.5), 0.5);
}

TEST(Cli, BooleanFlagPresence) {
  const Cli cli = make_cli({"--fast"});
  EXPECT_TRUE(cli.has_flag("--fast"));
  EXPECT_FALSE(cli.has_flag("--slow"));
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make_cli({"input.csv", "--dim", "100", "output.csv"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
  EXPECT_EQ(cli.positional()[1], "output.csv");
}

TEST(Cli, BadIntegerThrows) {
  const Cli cli = make_cli({"--dim", "abc"});
  EXPECT_THROW((void)cli.get_int("--dim", 0), std::invalid_argument);
}

TEST(Cli, NegativeForUnsignedThrows) {
  const Cli cli = make_cli({"--seed=-4"});
  EXPECT_THROW((void)cli.get_uint("--seed", 0), std::invalid_argument);
}

TEST(Cli, DoubleParsing) {
  const Cli cli = make_cli({"--frac", "0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("--frac", 0.0), 0.25);
}

}  // namespace
}  // namespace hdc::util
