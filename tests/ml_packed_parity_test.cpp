// Bit-exactness tests for the packed (bitplane + popcount) ML path.
//
// The packed fast paths promise bit-identical models to the dense double
// code on any all-0/1 design matrix: same splits, same weights, same
// predictions, same RNG draw sequences. These tests fit every model both
// ways on golden hypervector encodings of the Pima and Sylhet substitutes —
// including ragged row counts that exercise partial trailing mask words —
// and compare model internals with EXPECT_EQ, not tolerances.
#include <algorithm>
#include <cstdlib>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/extractor.hpp"
#include "core/hybrid.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/search.hpp"
#include "ml/forest.hpp"
#include "ml/hist_gbdt.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/packed.hpp"
#include "ml/sgd.hpp"
#include "ml/svm.hpp"
#include "ml/tree.hpp"
#include "simd/dispatch.hpp"

namespace {

using hdc::hv::BitMatrix;
using hdc::ml::Labels;
using hdc::ml::Matrix;

/// Restores the HDC_ML_PACKED-derived default on scope exit.
class PackedGuard {
 public:
  PackedGuard() = default;
  ~PackedGuard() { hdc::ml::reset_packed_enabled(); }
};

struct Encoded {
  Matrix X;       // dense 0/1 doubles
  BitMatrix bits; // the same values, packed
  Labels y;
};

/// Encode a dataset into hypervectors and expand the dense mirror from the
/// same bits, so both fit paths consume the exact same design matrix.
Encoded encode(const hdc::data::Dataset& ds, std::size_t dim,
               std::uint64_t seed = 42) {
  hdc::core::ExtractorConfig config;
  config.dimensions = dim;
  config.seed = seed;
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(ds);
  Encoded out;
  out.bits = extractor.transform_bits(ds);
  out.X.reserve(out.bits.rows());
  for (std::size_t i = 0; i < out.bits.rows(); ++i) {
    out.X.push_back(out.bits.row_doubles(i));
  }
  out.y = ds.labels();
  return out;
}

Encoded encode_pima(std::size_t dim = 1000) {
  hdc::data::PimaConfig config;
  config.seed = 2023;
  return encode(hdc::data::impute_class_median(hdc::data::make_pima(config)), dim);
}

Encoded encode_sylhet(std::size_t dim = 1000) {
  return encode(hdc::data::make_sylhet(hdc::data::SylhetConfig{}), dim);
}

/// Row subset of an Encoded (first `n` rows), for ragged-row-count sweeps.
Encoded head(const Encoded& full, std::size_t n) {
  Encoded out;
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  out.bits = full.bits.subset(idx);
  out.X.assign(full.X.begin(), full.X.begin() + static_cast<std::ptrdiff_t>(n));
  out.y.assign(full.y.begin(), full.y.begin() + static_cast<std::ptrdiff_t>(n));
  return out;
}

/// Fit `make()` dense (kill switch on) and packed (fit_bits), and require
/// identical predictions over the training rows from both routes.
template <typename MakeFn, typename CheckFn>
void expect_parity(const Encoded& data, const MakeFn& make, const CheckFn& check) {
  PackedGuard guard;

  hdc::ml::set_packed_enabled(false);
  auto dense = make();
  dense->fit(data.X, data.y);
  const std::vector<int> dense_pred = dense->predict_all(data.X);

  hdc::ml::set_packed_enabled(true);
  auto packed = make();
  packed->fit_bits(data.bits, data.y);
  const std::vector<int> packed_pred = packed->predict_all_bits(data.bits);
  EXPECT_EQ(packed_pred, dense_pred);

  // The auto-promoting fit(Matrix) entry must land on the same model too.
  auto promoted = make();
  promoted->fit(data.X, data.y);
  EXPECT_EQ(promoted->predict_all(data.X), dense_pred);

  check(*dense, *packed);
}

}  // namespace

// ---------------------------------------------------------------------------
// BitMatrix / try_pack plumbing
// ---------------------------------------------------------------------------

TEST(PackedPlumbing, TryPackRejectsNonBinary) {
  EXPECT_FALSE(hdc::ml::try_pack({{0.0, 1.0}, {1.0, 0.5}}).has_value());
  EXPECT_FALSE(hdc::ml::try_pack({{2.0, 1.0}}).has_value());
  EXPECT_FALSE(hdc::ml::try_pack({{-0.5, 0.0}}).has_value());
}

TEST(PackedPlumbing, TryPackRoundTripsValues) {
  const Matrix X = {{0.0, 1.0, 1.0}, {1.0, 0.0, 1.0}, {1.0, 1.0, 0.0}};
  const std::optional<BitMatrix> bits = hdc::ml::try_pack(X);
  ASSERT_TRUE(bits.has_value());
  EXPECT_EQ(bits->rows(), 3u);
  EXPECT_EQ(bits->cols(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bits->row_doubles(i), X[i]);
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(bits->get(i, j), X[i][j] == 1.0);
    }
  }
  EXPECT_EQ(bits->column_popcount(0), 2u);
  EXPECT_EQ(bits->valid().count(), 3u);
}

// Row counts that land on and straddle 64-bit mask-word boundaries: the
// trailing partial word is where a padding-bit bug would show up.
TEST(PackedPlumbing, RaggedRowCountsRoundTrip) {
  const Encoded full = encode_pima(256);
  for (const std::size_t n : {64u, 65u, 127u, 191u}) {
    const Encoded sub = head(full, n);
    ASSERT_EQ(sub.bits.rows(), n);
    EXPECT_EQ(sub.bits.valid().count(), n);
    for (const std::size_t i : {std::size_t{0}, n / 2, n - 1}) {
      EXPECT_EQ(sub.bits.row_doubles(i), sub.X[i]) << "n=" << n << " row=" << i;
    }
    // Column popcounts against a dense count over the same subset.
    for (const std::size_t j : {std::size_t{0}, sub.bits.cols() - 1}) {
      std::size_t expected = 0;
      for (std::size_t i = 0; i < n; ++i) expected += sub.X[i][j] == 1.0 ? 1 : 0;
      EXPECT_EQ(sub.bits.column_popcount(j), expected) << "n=" << n << " col=" << j;
    }
  }
}

// ---------------------------------------------------------------------------
// Per-model golden parity (Pima M encoding)
// ---------------------------------------------------------------------------

TEST(PackedParity, HistGbdtPima) {
  const Encoded data = encode_pima();
  expect_parity(
      data, [] { return std::make_unique<hdc::ml::HistGbdtClassifier>(); },
      [&](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
        const auto& d = dynamic_cast<const hdc::ml::HistGbdtClassifier&>(dense);
        const auto& p = dynamic_cast<const hdc::ml::HistGbdtClassifier&>(packed);
        EXPECT_EQ(d.round_count(), p.round_count());
        for (std::size_t i = 0; i < data.X.size(); i += 37) {
          EXPECT_EQ(d.predict_proba(data.X[i]), p.predict_proba(data.X[i]));
        }
      });
}

TEST(PackedParity, DecisionTreePima) {
  const Encoded data = encode_pima();
  expect_parity(
      data, [] { return std::make_unique<hdc::ml::DecisionTree>(); },
      [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
        const auto& d = dynamic_cast<const hdc::ml::DecisionTree&>(dense);
        const auto& p = dynamic_cast<const hdc::ml::DecisionTree&>(packed);
        EXPECT_EQ(d.node_count(), p.node_count());
        EXPECT_EQ(d.depth(), p.depth());
        EXPECT_EQ(d.feature_importances(), p.feature_importances());
      });
}

TEST(PackedParity, RandomForestPima) {
  const Encoded data = encode_pima();
  hdc::ml::ForestConfig config;
  config.n_trees = 25;
  expect_parity(
      data, [&] { return std::make_unique<hdc::ml::RandomForest>(config); },
      [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
        const auto& d = dynamic_cast<const hdc::ml::RandomForest&>(dense);
        const auto& p = dynamic_cast<const hdc::ml::RandomForest&>(packed);
        EXPECT_EQ(d.feature_importances(), p.feature_importances());
      });
}

TEST(PackedParity, LogisticPima) {
  const Encoded data = encode_pima();
  hdc::ml::LogisticConfig config;
  config.max_iter = 80;  // parity is per-iteration exact; keep the test quick
  expect_parity(
      data, [&] { return std::make_unique<hdc::ml::LogisticRegression>(config); },
      [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
        const auto& d = dynamic_cast<const hdc::ml::LogisticRegression&>(dense);
        const auto& p = dynamic_cast<const hdc::ml::LogisticRegression&>(packed);
        EXPECT_EQ(d.weights(), p.weights());
        EXPECT_EQ(d.bias(), p.bias());
      });
}

TEST(PackedParity, SgdPima) {
  const Encoded data = encode_pima();
  for (const hdc::ml::SgdLoss loss : {hdc::ml::SgdLoss::kHinge, hdc::ml::SgdLoss::kLog}) {
    hdc::ml::SgdConfig config;
    config.loss = loss;
    expect_parity(
        data, [&] { return std::make_unique<hdc::ml::SgdClassifier>(config); },
        [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
          const auto& d = dynamic_cast<const hdc::ml::SgdClassifier&>(dense);
          const auto& p = dynamic_cast<const hdc::ml::SgdClassifier&>(packed);
          EXPECT_EQ(d.weights(), p.weights());
          EXPECT_EQ(d.bias(), p.bias());
        });
  }
}

TEST(PackedParity, SvcPima) {
  const Encoded data = encode_pima(500);
  for (const hdc::ml::SvmKernel kernel :
       {hdc::ml::SvmKernel::kRbf, hdc::ml::SvmKernel::kLinear}) {
    hdc::ml::SvcConfig config;
    config.kernel = kernel;
    expect_parity(
        data, [&] { return std::make_unique<hdc::ml::SvcClassifier>(config); },
        [&](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
          const auto& d = dynamic_cast<const hdc::ml::SvcClassifier&>(dense);
          const auto& p = dynamic_cast<const hdc::ml::SvcClassifier&>(packed);
          EXPECT_EQ(d.support_vector_count(), p.support_vector_count());
          for (std::size_t i = 0; i < data.X.size(); i += 53) {
            EXPECT_EQ(d.decision(data.X[i]), p.decision(data.X[i]));
          }
        });
  }
}

TEST(PackedParity, KnnPima) {
  const Encoded data = encode_pima();
  for (const bool weighted : {false, true}) {
    hdc::ml::KnnConfig config;
    config.distance_weighted = weighted;
    expect_parity(
        data, [&] { return std::make_unique<hdc::ml::KnnClassifier>(config); },
        [](const hdc::ml::Classifier&, const hdc::ml::Classifier&) {});
  }
}

// ---------------------------------------------------------------------------
// Sylhet encoding + ragged row counts
// ---------------------------------------------------------------------------

TEST(PackedParity, HistGbdtSylhet) {
  const Encoded data = encode_sylhet();
  expect_parity(
      data, [] { return std::make_unique<hdc::ml::HistGbdtClassifier>(); },
      [](const hdc::ml::Classifier&, const hdc::ml::Classifier&) {});
}

TEST(PackedParity, ForestAndLogisticSylhet) {
  const Encoded data = encode_sylhet();
  hdc::ml::ForestConfig forest_config;
  forest_config.n_trees = 15;
  expect_parity(
      data, [&] { return std::make_unique<hdc::ml::RandomForest>(forest_config); },
      [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
        EXPECT_EQ(dynamic_cast<const hdc::ml::RandomForest&>(dense).feature_importances(),
                  dynamic_cast<const hdc::ml::RandomForest&>(packed).feature_importances());
      });
  hdc::ml::LogisticConfig logistic_config;
  logistic_config.max_iter = 60;
  expect_parity(
      data, [&] { return std::make_unique<hdc::ml::LogisticRegression>(logistic_config); },
      [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
        EXPECT_EQ(dynamic_cast<const hdc::ml::LogisticRegression&>(dense).weights(),
                  dynamic_cast<const hdc::ml::LogisticRegression&>(packed).weights());
      });
}

// Non-multiple-of-64 row counts drive partial trailing words through every
// mask/plane reduction in the tree and boosting split searches.
TEST(PackedParity, RaggedRowCounts) {
  const Encoded full = encode_pima(500);
  for (const std::size_t n : {64u, 65u, 127u, 191u}) {
    const Encoded sub = head(full, n);
    hdc::ml::HistGbdtConfig boost_config;
    boost_config.n_rounds = 20;
    expect_parity(
        sub, [&] { return std::make_unique<hdc::ml::HistGbdtClassifier>(boost_config); },
        [](const hdc::ml::Classifier&, const hdc::ml::Classifier&) {});
    expect_parity(
        sub, [] { return std::make_unique<hdc::ml::DecisionTree>(); },
        [](const hdc::ml::Classifier& dense, const hdc::ml::Classifier& packed) {
          EXPECT_EQ(dynamic_cast<const hdc::ml::DecisionTree&>(dense).node_count(),
                    dynamic_cast<const hdc::ml::DecisionTree&>(packed).node_count());
        });
  }
}

// ---------------------------------------------------------------------------
// Kill switch + env semantics
// ---------------------------------------------------------------------------

TEST(PackedSwitch, KillSwitchFallsBackToDense) {
  PackedGuard guard;
  const Encoded data = head(encode_pima(300), 150);

  hdc::ml::set_packed_enabled(true);
  hdc::ml::DecisionTree packed_tree;
  packed_tree.fit_bits(data.bits, data.y);

  // With the switch off, fit_bits must still work (row expansion) and give
  // the same model; and fit() must not promote.
  hdc::ml::set_packed_enabled(false);
  EXPECT_FALSE(hdc::ml::packed_enabled());
  hdc::ml::DecisionTree fallback_tree;
  fallback_tree.fit_bits(data.bits, data.y);
  EXPECT_EQ(fallback_tree.node_count(), packed_tree.node_count());
  EXPECT_EQ(fallback_tree.feature_importances(), packed_tree.feature_importances());
  EXPECT_EQ(fallback_tree.predict_all_bits(data.bits),
            packed_tree.predict_all_bits(data.bits));

  hdc::ml::reset_packed_enabled();
}

TEST(PackedSwitch, SetAndResetRoundTrip) {
  PackedGuard guard;
  hdc::ml::set_packed_enabled(false);
  EXPECT_FALSE(hdc::ml::packed_enabled());
  hdc::ml::set_packed_enabled(true);
  EXPECT_TRUE(hdc::ml::packed_enabled());
  hdc::ml::reset_packed_enabled();
  // No HDC_ML_PACKED in the test environment (or a sane value): default on.
  if (const char* env = std::getenv("HDC_ML_PACKED");
      env == nullptr || std::string_view(env) != "0") {
    EXPECT_TRUE(hdc::ml::packed_enabled());
  }
}

// ---------------------------------------------------------------------------
// KNN vs hv/search regression (the satellite: one Hamming implementation)
// ---------------------------------------------------------------------------

TEST(PackedKnn, MatchesSearchEngineNeighbors) {
  PackedGuard guard;
  hdc::ml::set_packed_enabled(true);
  const Encoded data = encode_pima(1000);
  const std::size_t n_db = 500;
  const std::size_t n_q = data.bits.rows() - n_db;

  std::vector<std::size_t> db_idx(n_db);
  for (std::size_t i = 0; i < n_db; ++i) db_idx[i] = i;
  std::vector<std::size_t> q_idx(n_q);
  for (std::size_t i = 0; i < n_q; ++i) q_idx[i] = n_db + i;
  const BitMatrix db = data.bits.subset(db_idx);
  const BitMatrix queries = data.bits.subset(q_idx);
  const Labels db_y(data.y.begin(), data.y.begin() + static_cast<std::ptrdiff_t>(n_db));

  hdc::ml::KnnConfig config;
  config.k = 1;
  hdc::ml::KnnClassifier knn(config);
  knn.fit_bits(db, db_y);
  const std::vector<int> pred = knn.predict_all_bits(queries);

  const std::vector<hdc::hv::Neighbor> nearest =
      hdc::hv::nearest_neighbors(queries.row_major(), db.row_major());
  const std::vector<std::size_t> dmat =
      hdc::hv::distance_matrix(queries.row_major(), db.row_major());

  std::size_t compared = 0;
  for (std::size_t q = 0; q < n_q; ++q) {
    // k=1 KNN picks *a* minimum-distance row; the search engine picks the
    // lowest-index one. Compare labels only where the minimum is unique.
    const std::size_t best = nearest[q].distance;
    std::size_t min_count = 0;
    for (std::size_t j = 0; j < n_db; ++j) {
      if (dmat[q * n_db + j] == best) ++min_count;
    }
    if (min_count != 1) continue;
    ++compared;
    EXPECT_EQ(pred[q], db_y[nearest[q].index]) << "query " << q;
  }
  EXPECT_GT(compared, n_q / 2) << "tie-skip removed too many queries";
}

// ---------------------------------------------------------------------------
// Pipeline-level parity: experiment driver + hybrid model
// ---------------------------------------------------------------------------

TEST(PackedPipeline, KfoldAccuracyIdenticalPackedVsDense) {
  PackedGuard guard;
  hdc::data::PimaConfig pima_config;
  pima_config.n_negative = 120;
  pima_config.n_positive = 60;
  pima_config.seed = 7;
  const hdc::data::Dataset ds =
      hdc::data::impute_class_median(hdc::data::make_pima(pima_config));

  hdc::core::ExperimentConfig config;
  config.extractor.dimensions = 600;

  hdc::ml::set_packed_enabled(false);
  config.packed_ml = false;
  const hdc::eval::CvResult dense = hdc::core::kfold_cv_accuracy(
      ds, "Decision Tree", hdc::core::InputMode::kHypervectors, 5, config);

  hdc::ml::set_packed_enabled(true);
  config.packed_ml = true;
  const hdc::eval::CvResult packed = hdc::core::kfold_cv_accuracy(
      ds, "Decision Tree", hdc::core::InputMode::kHypervectors, 5, config);

  EXPECT_EQ(packed.fold_accuracy, dense.fold_accuracy);
  EXPECT_EQ(packed.mean_accuracy, dense.mean_accuracy);
}

TEST(PackedPipeline, HybridModelIdenticalPackedVsDense) {
  PackedGuard guard;
  hdc::data::PimaConfig pima_config;
  pima_config.n_negative = 100;
  pima_config.n_positive = 50;
  pima_config.seed = 13;
  const hdc::data::Dataset ds =
      hdc::data::impute_class_median(hdc::data::make_pima(pima_config));
  hdc::core::ExtractorConfig extractor_config;
  extractor_config.dimensions = 600;

  hdc::ml::set_packed_enabled(false);
  hdc::core::HybridModel dense(extractor_config,
                               std::make_unique<hdc::ml::HistGbdtClassifier>());
  dense.fit(ds);
  const std::vector<int> dense_pred = dense.predict_all(ds);

  hdc::ml::set_packed_enabled(true);
  hdc::core::HybridModel packed(extractor_config,
                                std::make_unique<hdc::ml::HistGbdtClassifier>());
  packed.fit(ds);
  EXPECT_EQ(packed.predict_all(ds), dense_pred);
}

// Packed fits must be bit-identical on every SIMD tier (the popcount
// reductions are integer-exact everywhere, so tier choice cannot matter).
TEST(PackedPipeline, TierInvariantPackedFits) {
  PackedGuard guard;
  hdc::ml::set_packed_enabled(true);
  const Encoded data = head(encode_pima(500), 200);

  std::vector<int> reference;
  bool have_reference = false;
  const hdc::simd::Tier initial = hdc::simd::active_tier();
  for (const hdc::simd::Tier tier : hdc::simd::supported_tiers()) {
    hdc::simd::set_tier(tier);
    hdc::ml::HistGbdtClassifier model;
    model.fit_bits(data.bits, data.y);
    const std::vector<int> pred = model.predict_all_bits(data.bits);
    if (!have_reference) {
      reference = pred;
      have_reference = true;
    } else {
      EXPECT_EQ(pred, reference) << "tier=" << hdc::simd::tier_name(tier);
    }
  }
  hdc::simd::set_tier(initial);
}
