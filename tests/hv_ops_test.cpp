#include "hv/ops.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hdc::hv {
namespace {

std::vector<BitVector> random_vectors(std::size_t count, std::size_t dim,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<BitVector> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(BitVector::random(dim, rng));
  return out;
}

TEST(Majority, SingleInputIsIdentity) {
  const auto v = random_vectors(1, 1000, 1);
  EXPECT_EQ(majority(v), v[0]);
}

TEST(Majority, UnanimousInputsReproduce) {
  util::Rng rng(2);
  const BitVector v = BitVector::random(1000, rng);
  const std::vector<BitVector> inputs = {v, v, v};
  EXPECT_EQ(majority(inputs), v);
}

TEST(Majority, OddMajorityRules) {
  BitVector a(4);
  BitVector b(4);
  BitVector c(4);
  a.set(0, true);
  b.set(0, true);  // bit0: 2/3 ones -> 1
  c.set(1, true);  // bit1: 1/3 ones -> 0
  const std::vector<BitVector> inputs = {a, b, c};
  const BitVector m = majority(inputs);
  EXPECT_TRUE(m.get(0));
  EXPECT_FALSE(m.get(1));
  EXPECT_FALSE(m.get(2));
}

TEST(Majority, TieGoesToOneByDefault) {
  BitVector a(2);
  BitVector b(2);
  a.set(0, true);  // bit0: 1 vs 1 -> tie
  const std::vector<BitVector> inputs = {a, b};
  const BitVector m = majority(inputs);
  EXPECT_TRUE(m.get(0));
  EXPECT_FALSE(m.get(1));  // 0 vs 0 is not a tie; it is unanimous zero
}

TEST(Majority, TieZeroPolicy) {
  BitVector a(2);
  BitVector b(2);
  a.set(0, true);
  const std::vector<BitVector> inputs = {a, b};
  const BitVector m = majority(inputs, TiePolicy::kZero);
  EXPECT_FALSE(m.get(0));
}

TEST(Majority, TieRandomNeedsRng) {
  BitVector a(2);
  BitVector b(2);
  a.set(0, true);
  const std::vector<BitVector> inputs = {a, b};
  EXPECT_THROW((void)majority(inputs, TiePolicy::kRandom), std::invalid_argument);
  util::Rng rng(3);
  EXPECT_NO_THROW((void)majority(inputs, TiePolicy::kRandom, &rng));
}

TEST(Majority, TieRandomIsRoughlyFair) {
  const std::size_t dim = 10000;
  util::Rng vec_rng(4);
  const BitVector a = BitVector::random(dim, vec_rng);
  BitVector b = a;
  b.invert();  // every bit ties
  util::Rng rng(5);
  const std::vector<BitVector> inputs = {a, b};
  const BitVector m = majority(inputs, TiePolicy::kRandom, &rng);
  EXPECT_NEAR(m.density(), 0.5, 0.03);
}

TEST(Majority, EmptyInputThrows) {
  const std::vector<BitVector> none;
  EXPECT_THROW((void)majority(none), std::invalid_argument);
}

TEST(Majority, MixedDimsThrow) {
  const std::vector<BitVector> inputs = {BitVector(8), BitVector(16)};
  EXPECT_THROW((void)majority(inputs), std::invalid_argument);
}

TEST(Majority, ResultIsCloserToInputsThanRandom) {
  // The bundling property: the majority vector is similar to each input.
  const std::size_t dim = 10000;
  const auto inputs = random_vectors(5, dim, 6);
  const BitVector m = majority(inputs);
  util::Rng rng(7);
  const BitVector outsider = BitVector::random(dim, rng);
  for (const BitVector& v : inputs) {
    EXPECT_LT(m.hamming(v), m.hamming(outsider));
  }
}

TEST(Majority, DistanceToInputsShrinksWithFewerInputs) {
  const std::size_t dim = 10000;
  const auto three = random_vectors(3, dim, 8);
  const auto nine = random_vectors(9, dim, 9);
  const double d3 = majority(three).hamming_fraction(three[0]);
  const double d9 = majority(nine).hamming_fraction(nine[0]);
  EXPECT_LT(d3, d9);  // more inputs -> each input is further from the bundle
}

TEST(WeightedMajority, HeavyWeightDominates) {
  const std::size_t dim = 1000;
  const auto inputs = random_vectors(3, dim, 10);
  const std::vector<double> weights = {10.0, 1.0, 1.0};
  const BitVector m = weighted_majority(inputs, weights);
  EXPECT_EQ(m, inputs[0]);  // weight 10 vs max 2 opposing votes
}

TEST(WeightedMajority, UniformWeightsMatchMajority) {
  const auto inputs = random_vectors(5, 2000, 11);
  const std::vector<double> weights(5, 2.5);
  EXPECT_EQ(weighted_majority(inputs, weights), majority(inputs));
}

TEST(WeightedMajority, RejectsBadWeights) {
  const auto inputs = random_vectors(2, 100, 12);
  EXPECT_THROW((void)weighted_majority(inputs, std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)weighted_majority(inputs, std::vector<double>{1.0, -1.0}),
               std::invalid_argument);
}

TEST(Bind, XorSemantics) {
  util::Rng rng(13);
  const BitVector a = BitVector::random(1000, rng);
  const BitVector b = BitVector::random(1000, rng);
  const BitVector bound = bind(a, b);
  EXPECT_EQ(bind(bound, b), a);  // unbinding recovers the filler
}

TEST(Bind, BoundVectorIsDissimilarToInputs) {
  util::Rng rng(14);
  const BitVector a = BitVector::random(10000, rng);
  const BitVector b = BitVector::random(10000, rng);
  const BitVector bound = bind(a, b);
  EXPECT_NEAR(bound.hamming_fraction(a), 0.5, 0.05);
  EXPECT_NEAR(bound.hamming_fraction(b), 0.5, 0.05);
}

TEST(Similarity, IdenticalIsOne) {
  util::Rng rng(15);
  const BitVector v = BitVector::random(1000, rng);
  EXPECT_DOUBLE_EQ(similarity(v, v), 1.0);
}

TEST(Similarity, ComplementIsMinusOne) {
  util::Rng rng(16);
  BitVector v = BitVector::random(1000, rng);
  BitVector w = v;
  w.invert();
  EXPECT_DOUBLE_EQ(similarity(v, w), -1.0);
}

TEST(Similarity, RandomPairNearZero) {
  util::Rng rng(17);
  const BitVector a = BitVector::random(10000, rng);
  const BitVector b = BitVector::random(10000, rng);
  EXPECT_NEAR(similarity(a, b), 0.0, 0.1);
}

TEST(BitAccumulator, MatchesBatchMajority) {
  const auto inputs = random_vectors(7, 3000, 18);
  BitAccumulator acc(3000);
  for (const BitVector& v : inputs) acc.add(v);
  EXPECT_EQ(acc.total(), 7u);
  EXPECT_EQ(acc.to_majority(), majority(inputs));
}

TEST(BitAccumulator, RemoveUndoesAdd) {
  const auto inputs = random_vectors(4, 1000, 19);
  BitAccumulator acc(1000);
  for (const BitVector& v : inputs) acc.add(v);
  acc.remove(inputs[3]);
  BitAccumulator expected(1000);
  for (std::size_t i = 0; i < 3; ++i) expected.add(inputs[i]);
  EXPECT_EQ(acc.to_majority(), expected.to_majority());
  EXPECT_EQ(acc.total(), 3u);
}

TEST(BitAccumulator, RemoveFromEmptyThrows) {
  BitAccumulator acc(100);
  EXPECT_THROW(acc.remove(BitVector(100)), std::logic_error);
}

TEST(BitAccumulator, DimensionMismatchThrows) {
  BitAccumulator acc(100);
  EXPECT_THROW(acc.add(BitVector(99)), std::invalid_argument);
}

TEST(BitAccumulator, EmptyMajorityIsZeroVector) {
  BitAccumulator acc(64);
  EXPECT_EQ(acc.to_majority().popcount(), 0u);
}

// Property sweep over input counts: bundling keeps inputs within expected
// distance (binomial concentration around (n-1)/(2n) for random inputs).
class MajorityCountSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MajorityCountSweep, BundleDistanceMatchesTheory) {
  const std::size_t count = GetParam();
  const std::size_t dim = 10000;
  const auto inputs = random_vectors(count, dim, 100 + count);
  const BitVector m = majority(inputs);
  // For odd n random inputs, E[dist(bundle, input)] / dim approaches
  // 0.5 - c/sqrt(n); it must at least stay clearly below 0.5.
  double mean = 0.0;
  for (const BitVector& v : inputs) mean += m.hamming_fraction(v);
  mean /= static_cast<double>(count);
  EXPECT_LT(mean, 0.47);
  EXPECT_GT(mean, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, MajorityCountSweep, ::testing::Values(3, 5, 9, 15));

}  // namespace
}  // namespace hdc::hv
