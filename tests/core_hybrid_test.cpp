#include "core/hybrid.hpp"

#include <gtest/gtest.h>

#include "data/preprocess.hpp"
#include "data/split.hpp"
#include "data/synthetic.hpp"
#include "ml/forest.hpp"
#include "ml/logistic.hpp"
#include "ml/zoo.hpp"
#include "nn/sequential.hpp"

namespace hdc::core {
namespace {

ExtractorConfig small_config() {
  ExtractorConfig config;
  config.dimensions = 2000;
  return config;
}

TEST(HybridModel, NullDownstreamRejected) {
  EXPECT_THROW(HybridModel(small_config(), nullptr), std::invalid_argument);
}

TEST(HybridModel, FitPredictOnSylhet) {
  const data::Dataset train = data::make_sylhet({80, 120, 21});
  const data::Dataset test = data::make_sylhet({40, 60, 22});
  ml::ForestConfig forest_config;
  forest_config.n_trees = 30;
  HybridModel model(small_config(),
                    std::make_unique<ml::RandomForest>(forest_config));
  model.fit(train);
  const eval::BinaryMetrics m = model.evaluate(test);
  EXPECT_GT(m.accuracy, 0.8);
}

TEST(HybridModel, PredictMatchesPredictAll) {
  const data::Dataset ds = data::make_sylhet({30, 40, 23});
  HybridModel model(small_config(), std::make_unique<ml::LogisticRegression>());
  model.fit(ds);
  const auto all = model.predict_all(ds);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(model.predict(ds.row(i)), all[i]);
  }
}

TEST(HybridModel, ProbaConsistentWithPrediction) {
  const data::Dataset ds = data::make_sylhet({30, 40, 24});
  HybridModel model(small_config(), std::make_unique<ml::LogisticRegression>());
  model.fit(ds);
  for (std::size_t i = 0; i < 10; ++i) {
    const double p = model.predict_proba(ds.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(model.predict(ds.row(i)), p >= 0.5 ? 1 : 0);
  }
}

TEST(HybridModel, UnfittedThrows) {
  HybridModel model(small_config(), std::make_unique<ml::LogisticRegression>());
  const std::vector<double> row = {1.0};
  EXPECT_THROW((void)model.predict_proba(row), std::logic_error);
  EXPECT_THROW((void)model.predict_all(data::make_sylhet({5, 5, 1})),
               std::logic_error);
}

TEST(HybridModel, WorksWithSequentialNn) {
  // The paper's HDC+DNN pipeline: hypervectors into the Sequential NN.
  const data::Dataset train = data::make_sylhet({60, 90, 25});
  nn::SequentialConfig nn_config;
  nn_config.max_epochs = 60;
  nn_config.patience = 10;
  HybridModel model(small_config(), std::make_unique<nn::Sequential>(nn_config));
  model.fit(train);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < train.n_rows(); ++i) {
    if (model.predict(train.row(i)) == train.label(i)) ++hits;
  }
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(train.n_rows()), 0.8);
}

TEST(HybridModel, ExtractorAccessible) {
  const data::Dataset ds = data::make_sylhet({20, 30, 26});
  HybridModel model(small_config(), std::make_unique<ml::LogisticRegression>());
  model.fit(ds);
  EXPECT_TRUE(model.extractor().fitted());
  EXPECT_EQ(model.extractor().dimensions(), 2000u);
  EXPECT_EQ(model.downstream().name(), "Logistic Regression");
}

TEST(HybridModel, HypervectorsHelpSgdOnUnscaledFeatures) {
  // The paper's central claim, miniaturised: SGD on raw unscaled Pima-like
  // features vs SGD on hypervectors. Hypervector inputs are homogeneous 0/1,
  // so SGD should do at least as well, usually much better.
  const data::Dataset raw = data::remove_missing_rows(data::make_pima({160, 80, true, 0.05, 27}));
  const data::TrainTestIndices split = data::stratified_split(raw.labels(), 0.25, 28);
  const data::Dataset train = raw.subset(split.train);
  const data::Dataset test = raw.subset(split.test);

  auto sgd_raw = ml::make_model("SGD");
  sgd_raw->fit(train.feature_matrix(), train.labels());
  std::size_t raw_hits = 0;
  for (std::size_t i = 0; i < test.n_rows(); ++i) {
    if (sgd_raw->predict(test.row(i)) == test.label(i)) ++raw_hits;
  }
  const double raw_acc = static_cast<double>(raw_hits) / test.n_rows();

  HybridModel hybrid(small_config(), ml::make_model("SGD"));
  hybrid.fit(train);
  const double hv_acc = hybrid.evaluate(test).accuracy;
  EXPECT_GE(hv_acc + 0.05, raw_acc);  // allow small-sample noise either way
}

}  // namespace
}  // namespace hdc::core
