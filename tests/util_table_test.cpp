#include "util/table.hpp"

#include <gtest/gtest.h>

namespace hdc::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"Model", "Acc"});
  t.add_row({"RF", "98.0%"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Model"), std::string::npos);
  EXPECT_NE(out.find("RF"), std::string::npos);
  EXPECT_NE(out.find("98.0%"), std::string::npos);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RowCountTracksRows) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, SeparatorRendersFullLine) {
  Table t({"col"});
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  const std::string out = t.render();
  // header line + top/bottom + separator -> at least 4 horizontal rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find('+'); pos != std::string::npos;
       pos = out.find('+', pos + 1)) {
    if (pos == 0 || out[pos - 1] == '\n') ++rules;
  }
  EXPECT_GE(rules, 4u);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.add_row({"wide-cell-content"});
  const std::string out = t.render();
  // Every rendered line should have equal length.
  std::size_t expected = out.find('\n');
  for (std::size_t start = 0; start < out.size();) {
    const std::size_t end = out.find('\n', start);
    EXPECT_EQ(end - start, expected);
    start = end + 1;
  }
}

TEST(Table, NumericCellsRightAligned) {
  Table t({"name", "value"});
  t.add_row({"x", "1.5"});
  const std::string out = t.render();
  // "value" is 5 wide; "1.5" right-aligned leaves padding before the number.
  EXPECT_NE(out.find("   1.5 |"), std::string::npos);
}

}  // namespace
}  // namespace hdc::util
