#include "ml/forest.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"

namespace hdc::ml {
namespace {

TEST(RandomForest, SolvesXor) {
  const data::Dataset ds = data::make_xor(50, 0.2, 41);
  ForestConfig config;
  config.n_trees = 30;
  RandomForest forest(config);
  forest.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(forest.accuracy(ds.feature_matrix(), ds.labels()), 0.95);
}

TEST(RandomForest, GeneralisesOnHeldOutBlobs) {
  const data::Dataset train = data::make_two_gaussians(150, 4, 2.0, 42);
  const data::Dataset test = data::make_two_gaussians(50, 4, 2.0, 43);
  ForestConfig config;
  config.n_trees = 50;
  RandomForest forest(config);
  forest.fit(train.feature_matrix(), train.labels());
  EXPECT_GT(forest.accuracy(test.feature_matrix(), test.labels()), 0.85);
}

TEST(RandomForest, DeterministicPerSeed) {
  const data::Dataset ds = data::make_two_gaussians(80, 3, 1.0, 44);
  ForestConfig config;
  config.n_trees = 10;
  config.seed = 7;
  RandomForest a(config);
  RandomForest b(config);
  a.fit(ds.feature_matrix(), ds.labels());
  b.fit(ds.feature_matrix(), ds.labels());
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(ds.row(i)), b.predict_proba(ds.row(i)));
  }
}

TEST(RandomForest, SeedChangesEnsemble) {
  const data::Dataset ds = data::make_two_gaussians(80, 3, 1.0, 45);
  ForestConfig a_config;
  a_config.n_trees = 10;
  a_config.seed = 1;
  ForestConfig b_config = a_config;
  b_config.seed = 2;
  RandomForest a(a_config);
  RandomForest b(b_config);
  a.fit(ds.feature_matrix(), ds.labels());
  b.fit(ds.feature_matrix(), ds.labels());
  bool any_difference = false;
  for (std::size_t i = 0; i < ds.n_rows() && !any_difference; ++i) {
    any_difference = a.predict_proba(ds.row(i)) != b.predict_proba(ds.row(i));
  }
  EXPECT_TRUE(any_difference);
}

TEST(RandomForest, ProbabilityIsTreeAverage) {
  const data::Dataset ds = data::make_two_gaussians(60, 2, 3.0, 46);
  ForestConfig config;
  config.n_trees = 15;
  RandomForest forest(config);
  forest.fit(ds.feature_matrix(), ds.labels());
  EXPECT_EQ(forest.tree_count(), 15u);
  for (std::size_t i = 0; i < 10; ++i) {
    const double p = forest.predict_proba(ds.row(i));
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(RandomForest, SmootherThanSingleTree) {
  // Ensemble averaging should not be worse than a single deep tree on a
  // noisy held-out set.
  const data::Dataset train = data::make_two_gaussians(150, 4, 1.0, 47);
  const data::Dataset test = data::make_two_gaussians(80, 4, 1.0, 48);
  DecisionTree tree;
  tree.fit(train.feature_matrix(), train.labels());
  ForestConfig config;
  config.n_trees = 60;
  RandomForest forest(config);
  forest.fit(train.feature_matrix(), train.labels());
  EXPECT_GE(forest.accuracy(test.feature_matrix(), test.labels()) + 0.03,
            tree.accuracy(test.feature_matrix(), test.labels()));
}

TEST(RandomForest, ZeroTreesRejected) {
  ForestConfig config;
  config.n_trees = 0;
  EXPECT_THROW(RandomForest{config}, std::invalid_argument);
}

TEST(RandomForest, NotFittedThrows) {
  const RandomForest forest;
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)forest.predict_proba(x), std::logic_error);
}

TEST(RandomForest, NoBootstrapStillWorks) {
  const data::Dataset ds = data::make_two_gaussians(60, 2, 3.0, 49);
  ForestConfig config;
  config.n_trees = 10;
  config.bootstrap = false;
  RandomForest forest(config);
  forest.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(forest.accuracy(ds.feature_matrix(), ds.labels()), 0.95);
}

}  // namespace
}  // namespace hdc::ml
