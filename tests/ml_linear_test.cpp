#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "ml/logistic.hpp"
#include "ml/sgd.hpp"
#include "ml/svm.hpp"

namespace hdc::ml {
namespace {

struct Problem {
  Matrix X;
  Labels y;
};

Problem from_dataset(const data::Dataset& ds) {
  return {ds.feature_matrix(), ds.labels()};
}

Problem separable_blobs() {
  return from_dataset(data::make_two_gaussians(100, 4, 5.0, 21));
}

Problem overlapping_blobs() {
  return from_dataset(data::make_two_gaussians(150, 4, 1.0, 22));
}

Problem xor_problem() { return from_dataset(data::make_xor(60, 0.25, 23)); }

TEST(LogisticRegression, SeparatesBlobs) {
  const Problem p = separable_blobs();
  LogisticRegression model;
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.98);
}

TEST(LogisticRegression, ProbabilitiesAreCalibratedDirectionally) {
  const Problem p = separable_blobs();
  LogisticRegression model;
  model.fit(p.X, p.y);
  // Deep in the positive blob -> probability near 1; negative blob -> near 0.
  const std::vector<double> pos = {2.5, 2.5, 2.5, 2.5};
  const std::vector<double> neg = {-2.5, -2.5, -2.5, -2.5};
  EXPECT_GT(model.predict_proba(pos), 0.9);
  EXPECT_LT(model.predict_proba(neg), 0.1);
}

TEST(LogisticRegression, HandlesOverlapGracefully) {
  const Problem p = overlapping_blobs();
  LogisticRegression model;
  model.fit(p.X, p.y);
  const double acc = model.accuracy(p.X, p.y);
  EXPECT_GT(acc, 0.6);
  EXPECT_LT(acc, 1.0);  // overlap means it cannot be perfect
}

TEST(LogisticRegression, CannotSolveXor) {
  const Problem p = xor_problem();
  LogisticRegression model;
  model.fit(p.X, p.y);
  EXPECT_LT(model.accuracy(p.X, p.y), 0.7);  // linear model, ~chance
}

TEST(LogisticRegression, NotFittedThrows) {
  const LogisticRegression model;
  const std::vector<double> x = {1.0};
  EXPECT_THROW((void)model.predict_proba(x), std::logic_error);
}

TEST(LogisticRegression, ArityMismatchThrows) {
  const Problem p = separable_blobs();
  LogisticRegression model;
  model.fit(p.X, p.y);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW((void)model.predict_proba(bad), std::invalid_argument);
}

TEST(LogisticRegression, RejectsBadConfig) {
  LogisticConfig config;
  config.c = 0.0;
  EXPECT_THROW(LogisticRegression{config}, std::invalid_argument);
}

TEST(LogisticRegression, ScaleInvariantViaStandardization) {
  // Multiply one feature by 1000; internal standardisation should keep the
  // fit essentially as good.
  Problem p = separable_blobs();
  for (auto& row : p.X) row[0] *= 1000.0;
  LogisticRegression model;
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.97);
}

TEST(SgdClassifier, SeparatesBlobs) {
  const Problem p = separable_blobs();
  SgdClassifier model;
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.95);
}

TEST(SgdClassifier, SensitiveToFeatureScale) {
  // The paper's key SGD observation: unscaled features hurt SGD. A feature
  // blown up 1000x dominates updates and degrades accuracy vs the scaled fit.
  Problem scaled = overlapping_blobs();
  SgdClassifier a;
  a.fit(scaled.X, scaled.y);
  const double acc_scaled = a.accuracy(scaled.X, scaled.y);

  Problem skewed = overlapping_blobs();
  for (auto& row : skewed.X) {
    row[0] *= 1000.0;  // one dominating, weakly-informative axis
  }
  SgdClassifier b;
  b.fit(skewed.X, skewed.y);
  const double acc_skewed = b.accuracy(skewed.X, skewed.y);
  EXPECT_LT(acc_skewed, acc_scaled + 0.02);
}

TEST(SgdClassifier, LogLossVariantWorks) {
  SgdConfig config;
  config.loss = SgdLoss::kLog;
  const Problem p = separable_blobs();
  SgdClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.95);
}

TEST(SgdClassifier, DeterministicPerSeed) {
  const Problem p = overlapping_blobs();
  SgdClassifier a;
  SgdClassifier b;
  a.fit(p.X, p.y);
  b.fit(p.X, p.y);
  EXPECT_EQ(a.weights(), b.weights());
}

TEST(SgdClassifier, RejectsBadConfig) {
  SgdConfig config;
  config.epochs = 0;
  EXPECT_THROW(SgdClassifier{config}, std::invalid_argument);
}

TEST(Svc, RbfSeparatesBlobs) {
  const Problem p = separable_blobs();
  SvcClassifier model;
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.97);
}

TEST(Svc, RbfSolvesXor) {
  const Problem p = xor_problem();
  SvcClassifier model;  // RBF kernel by default
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.9);
}

TEST(Svc, LinearKernelCannotSolveXor) {
  SvcConfig config;
  config.kernel = SvmKernel::kLinear;
  const Problem p = xor_problem();
  SvcClassifier model(config);
  model.fit(p.X, p.y);
  // A linear boundary on XOR is near chance; allow some training-set
  // overfit slack through the bias/support-vector placement.
  EXPECT_LT(model.accuracy(p.X, p.y), 0.8);
}

TEST(Svc, LinearKernelSeparatesBlobs) {
  SvcConfig config;
  config.kernel = SvmKernel::kLinear;
  const Problem p = separable_blobs();
  SvcClassifier model(config);
  model.fit(p.X, p.y);
  EXPECT_GT(model.accuracy(p.X, p.y), 0.97);
}

TEST(Svc, HasSupportVectors) {
  const Problem p = separable_blobs();
  SvcClassifier model;
  model.fit(p.X, p.y);
  EXPECT_GT(model.support_vector_count(), 0u);
  EXPECT_LT(model.support_vector_count(), p.X.size());
}

TEST(Svc, DecisionSignMatchesPrediction) {
  const Problem p = separable_blobs();
  SvcClassifier model;
  model.fit(p.X, p.y);
  for (std::size_t i = 0; i < 20; ++i) {
    const int pred = model.predict(p.X[i]);
    const double dec = model.decision(p.X[i]);
    EXPECT_EQ(pred, dec >= 0.0 ? 1 : 0);
  }
}

TEST(Svc, RejectsBadC) {
  SvcConfig config;
  config.c = -1.0;
  EXPECT_THROW(SvcClassifier{config}, std::invalid_argument);
}

TEST(Svc, NotFittedThrows) {
  const SvcClassifier model;
  const std::vector<double> x = {0.0};
  EXPECT_THROW((void)model.decision(x), std::logic_error);
}

TEST(AllLinearModels, RejectEmptyTrainingData) {
  const Matrix empty;
  const Labels no_labels;
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(empty, no_labels), std::invalid_argument);
  SgdClassifier sgd;
  EXPECT_THROW(sgd.fit(empty, no_labels), std::invalid_argument);
  SvcClassifier svc;
  EXPECT_THROW(svc.fit(empty, no_labels), std::invalid_argument);
}

TEST(AllLinearModels, RejectRaggedMatrix) {
  Matrix ragged = {{1.0, 2.0}, {3.0}};
  Labels y = {0, 1};
  LogisticRegression lr;
  EXPECT_THROW(lr.fit(ragged, y), std::invalid_argument);
}

TEST(AllLinearModels, RejectNonBinaryLabels) {
  Matrix X = {{1.0}, {2.0}};
  Labels y = {0, 3};
  SgdClassifier sgd;
  EXPECT_THROW(sgd.fit(X, y), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::ml
