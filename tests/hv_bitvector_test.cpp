#include "hv/bitvector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace hdc::hv {
namespace {

TEST(BitVector, DefaultIsEmpty) {
  BitVector v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(BitVector, ConstructedZeroed) {
  BitVector v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetGetFlip) {
  BitVector v(70);
  v.set(0, true);
  v.set(63, true);
  v.set(64, true);
  v.set(69, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(63));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(69));
  EXPECT_EQ(v.popcount(), 4u);
  v.flip(63);
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3u);
  v.set(0, false);
  EXPECT_FALSE(v.get(0));
}

TEST(BitVector, HammingSelfIsZero) {
  util::Rng rng(1);
  const BitVector v = BitVector::random(1000, rng);
  EXPECT_EQ(v.hamming(v), 0u);
}

TEST(BitVector, HammingSymmetric) {
  util::Rng rng(2);
  const BitVector a = BitVector::random(1000, rng);
  const BitVector b = BitVector::random(1000, rng);
  EXPECT_EQ(a.hamming(b), b.hamming(a));
}

TEST(BitVector, HammingTriangleInequality) {
  util::Rng rng(3);
  const BitVector a = BitVector::random(512, rng);
  const BitVector b = BitVector::random(512, rng);
  const BitVector c = BitVector::random(512, rng);
  EXPECT_LE(a.hamming(c), a.hamming(b) + b.hamming(c));
}

TEST(BitVector, HammingCountsDifferences) {
  BitVector a(10);
  BitVector b(10);
  b.set(2, true);
  b.set(7, true);
  EXPECT_EQ(a.hamming(b), 2u);
}

TEST(BitVector, HammingSizeMismatchThrows) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_THROW((void)a.hamming(b), std::invalid_argument);
}

TEST(BitVector, XorIsBitwise) {
  BitVector a(8);
  BitVector b(8);
  a.set(0, true);
  a.set(1, true);
  b.set(1, true);
  b.set(2, true);
  const BitVector c = a ^ b;
  EXPECT_TRUE(c.get(0));
  EXPECT_FALSE(c.get(1));
  EXPECT_TRUE(c.get(2));
  EXPECT_EQ(c.popcount(), 2u);
}

TEST(BitVector, XorSelfInverse) {
  util::Rng rng(4);
  const BitVector a = BitVector::random(10000, rng);
  const BitVector b = BitVector::random(10000, rng);
  EXPECT_EQ((a ^ b) ^ b, a);
}

TEST(BitVector, InvertFlipsEverything) {
  util::Rng rng(5);
  BitVector v = BitVector::random(1000, rng);
  const std::size_t ones = v.popcount();
  v.invert();
  EXPECT_EQ(v.popcount(), 1000u - ones);
}

TEST(BitVector, InvertKeepsPaddingClean) {
  BitVector v(70);  // 6 padding bits in the last word
  v.invert();
  EXPECT_EQ(v.popcount(), 70u);  // not 128
}

TEST(BitVector, RotatePreservesPopcount) {
  util::Rng rng(6);
  const BitVector v = BitVector::random(997, rng);  // prime length
  const BitVector r = v.rotated(13);
  EXPECT_EQ(r.popcount(), v.popcount());
}

TEST(BitVector, RotateByZeroOrSizeIsIdentity) {
  util::Rng rng(7);
  const BitVector v = BitVector::random(256, rng);
  EXPECT_EQ(v.rotated(0), v);
  EXPECT_EQ(v.rotated(256), v);
}

TEST(BitVector, RotateComposition) {
  util::Rng rng(8);
  const BitVector v = BitVector::random(100, rng);
  EXPECT_EQ(v.rotated(30).rotated(70), v);
}

TEST(BitVector, RotateMovesBits) {
  BitVector v(10);
  v.set(0, true);
  const BitVector r = v.rotated(3);
  EXPECT_TRUE(r.get(3));
  EXPECT_EQ(r.popcount(), 1u);
}

TEST(BitVector, RandomIsDeterministicPerSeed) {
  util::Rng rng1(9);
  util::Rng rng2(9);
  EXPECT_EQ(BitVector::random(10000, rng1), BitVector::random(10000, rng2));
}

TEST(BitVector, RandomDensityNearHalf) {
  util::Rng rng(10);
  const BitVector v = BitVector::random(100000, rng);
  EXPECT_NEAR(v.density(), 0.5, 0.01);
}

TEST(BitVector, RandomWithOnesExact) {
  util::Rng rng(11);
  const BitVector v = BitVector::random_with_ones(1000, 250, rng);
  EXPECT_EQ(v.popcount(), 250u);
}

TEST(BitVector, RandomWithTooManyOnesThrows) {
  util::Rng rng(12);
  EXPECT_THROW((void)BitVector::random_with_ones(10, 11, rng), std::invalid_argument);
}

TEST(BitVector, RandomBalancedIsExactlyHalf) {
  util::Rng rng(13);
  const BitVector v = BitVector::random_balanced(10000, rng);
  EXPECT_EQ(v.popcount(), 5000u);
}

TEST(BitVector, RandomBalancedOddThrows) {
  util::Rng rng(14);
  EXPECT_THROW((void)BitVector::random_balanced(11, rng), std::invalid_argument);
}

TEST(BitVector, WithFlippedChangesExactCount) {
  util::Rng rng(15);
  const BitVector v = BitVector::random_balanced(2000, rng);
  const BitVector f = v.with_flipped(100, 100, rng);
  EXPECT_EQ(v.hamming(f), 200u);
  EXPECT_EQ(f.popcount(), v.popcount());  // equal flips preserve density
}

TEST(BitVector, WithFlippedZeroIsIdentity) {
  util::Rng rng(16);
  const BitVector v = BitVector::random(500, rng);
  EXPECT_EQ(v.with_flipped(0, 0, rng), v);
}

TEST(BitVector, WithFlippedOverflowThrows) {
  util::Rng rng(17);
  const BitVector v = BitVector::random_balanced(100, rng);  // 50 ones
  EXPECT_THROW((void)v.with_flipped(51, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)v.with_flipped(0, 51, rng), std::invalid_argument);
}

TEST(BitVector, ToStringRendersBits) {
  BitVector v(8);
  v.set(0, true);
  v.set(2, true);
  EXPECT_EQ(v.to_string(8), "10100000");
}

TEST(BitVector, ToStringTruncates) {
  BitVector v(100);
  const std::string s = v.to_string(10);
  EXPECT_EQ(s.size(), 13u);  // 10 chars + "..."
  EXPECT_EQ(s.substr(10), "...");
}

TEST(BitVector, ToDoublesMatchesBits) {
  BitVector v(5);
  v.set(1, true);
  v.set(4, true);
  const std::vector<double> d = v.to_doubles();
  ASSERT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
  EXPECT_DOUBLE_EQ(d[4], 1.0);
}

TEST(BitVector, OrAndOperators) {
  BitVector a(4);
  BitVector b(4);
  a.set(0, true);
  b.set(0, true);
  b.set(1, true);
  BitVector o = a;
  o |= b;
  EXPECT_EQ(o.popcount(), 2u);
  BitVector n = a;
  n &= b;
  EXPECT_EQ(n.popcount(), 1u);
  EXPECT_TRUE(n.get(0));
}

// Property sweep: random pairs at several dimensionalities concentrate near
// 0.5 normalised distance (quasi-orthogonality of random hypervectors).
class BitVectorDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVectorDimSweep, RandomPairsAreQuasiOrthogonal) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim);
  const BitVector a = BitVector::random(dim, rng);
  const BitVector b = BitVector::random(dim, rng);
  // Tolerance ~ 5 standard deviations of Binomial(dim, 0.5)/dim.
  const double tol = 5.0 * 0.5 / std::sqrt(static_cast<double>(dim));
  EXPECT_NEAR(a.hamming_fraction(b), 0.5, tol);
}

TEST_P(BitVectorDimSweep, PaddingBitsStayZeroThroughOps) {
  const std::size_t dim = GetParam();
  util::Rng rng(dim + 1);
  BitVector v = BitVector::random(dim, rng);
  v.invert();
  v ^= BitVector::random(dim, rng);
  EXPECT_LE(v.popcount(), dim);
}

INSTANTIATE_TEST_SUITE_P(Dims, BitVectorDimSweep,
                         ::testing::Values(64, 100, 1000, 4096, 10000, 20000));

}  // namespace
}  // namespace hdc::hv
