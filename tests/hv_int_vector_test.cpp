#include "hv/int_vector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace hdc::hv {
namespace {

TEST(IntVector, DefaultAndZero) {
  IntVector v;
  EXPECT_TRUE(v.empty());
  IntVector z(10);
  EXPECT_EQ(z.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(z.get(i), 0);
}

TEST(IntVector, AdditionIsElementwise) {
  IntVector a(3);
  IntVector b(3);
  a.set(0, 2);
  a.set(1, -1);
  b.set(0, 3);
  b.set(2, 5);
  const IntVector c = a + b;
  EXPECT_EQ(c.get(0), 5);
  EXPECT_EQ(c.get(1), -1);
  EXPECT_EQ(c.get(2), 5);
}

TEST(IntVector, SubtractionUndoesAddition) {
  util::Rng rng(1);
  const IntVector a = IntVector::random_bipolar(100, rng);
  const IntVector b = IntVector::random_bipolar(100, rng);
  EXPECT_EQ((a + b) - b, a);
}

TEST(IntVector, SizeMismatchThrows) {
  IntVector a(3);
  IntVector b(4);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW((void)a.dot(b), std::invalid_argument);
  EXPECT_THROW((void)a.hadamard(b), std::invalid_argument);
}

TEST(IntVector, HadamardBindingIsSelfInverseForBipolar) {
  util::Rng rng(2);
  const IntVector a = IntVector::random_bipolar(1000, rng);
  const IntVector key = IntVector::random_bipolar(1000, rng);
  EXPECT_EQ(a.hadamard(key).hadamard(key), a);
}

TEST(IntVector, BoundVectorDissimilarToInputs) {
  util::Rng rng(3);
  const IntVector a = IntVector::random_bipolar(10000, rng);
  const IntVector key = IntVector::random_bipolar(10000, rng);
  EXPECT_NEAR(a.hadamard(key).cosine(a), 0.0, 0.05);
}

TEST(IntVector, CosineIdentities) {
  util::Rng rng(4);
  const IntVector a = IntVector::random_bipolar(5000, rng);
  EXPECT_DOUBLE_EQ(a.cosine(a), 1.0);
  IntVector neg = IntVector(a.size()) - a;
  EXPECT_DOUBLE_EQ(a.cosine(neg), -1.0);
  const IntVector b = IntVector::random_bipolar(5000, rng);
  EXPECT_NEAR(a.cosine(b), 0.0, 0.06);
}

TEST(IntVector, CosineOfZeroVectorIsZero) {
  IntVector z(10);
  IntVector a(10);
  a.set(0, 1);
  EXPECT_DOUBLE_EQ(z.cosine(a), 0.0);
}

TEST(IntVector, SignTernarises) {
  IntVector a(4);
  a.set(0, 7);
  a.set(1, -3);
  a.set(2, 0);
  a.set(3, 1);
  const IntVector s = a.sign();
  EXPECT_EQ(s.get(0), 1);
  EXPECT_EQ(s.get(1), -1);
  EXPECT_EQ(s.get(2), 0);
  EXPECT_EQ(s.get(3), 1);
}

TEST(IntVector, ToBinaryThresholds) {
  IntVector a(4);
  a.set(0, 5);
  a.set(1, -2);
  a.set(2, 0);
  a.set(3, 0);
  const BitVector ones = a.to_binary(true);
  EXPECT_TRUE(ones.get(0));
  EXPECT_FALSE(ones.get(1));
  EXPECT_TRUE(ones.get(2));  // tie -> 1
  const BitVector zeros = a.to_binary(false);
  EXPECT_FALSE(zeros.get(2));
}

TEST(IntVector, RandomBipolarIsBalancedOnAverage) {
  util::Rng rng(5);
  const IntVector v = IntVector::random_bipolar(100000, rng);
  long long sum = 0;
  for (std::size_t i = 0; i < v.size(); ++i) sum += v.get(i);
  EXPECT_LT(std::abs(sum), 1500);  // ~5 sigma for n=100k
}

TEST(IntVector, RandomTernaryDensity) {
  util::Rng rng(6);
  const IntVector v = IntVector::random_ternary(100000, 0.1, rng);
  std::size_t non_zero = 0;
  for (std::size_t i = 0; i < v.size(); ++i) non_zero += v.get(i) != 0 ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(non_zero) / 100000.0, 0.1, 0.01);
}

TEST(IntVector, RandomTernaryBadDensityThrows) {
  util::Rng rng(7);
  EXPECT_THROW((void)IntVector::random_ternary(10, 1.5, rng), std::invalid_argument);
}

TEST(IntVector, FromBinaryLiftsToBipolar) {
  BitVector bits(4);
  bits.set(1, true);
  bits.set(3, true);
  const IntVector v = IntVector::from_binary(bits);
  EXPECT_EQ(v.get(0), -1);
  EXPECT_EQ(v.get(1), 1);
  EXPECT_EQ(v.get(2), -1);
  EXPECT_EQ(v.get(3), 1);
}

TEST(IntVector, BundleOfCopiesStaysSimilar) {
  util::Rng rng(8);
  const IntVector a = IntVector::random_bipolar(10000, rng);
  const IntVector b = IntVector::random_bipolar(10000, rng);
  const IntVector c = IntVector::random_bipolar(10000, rng);
  IntVector bundle = a;
  bundle += b;
  bundle += c;
  // Integer bundling keeps each input at cosine ~ 1/sqrt(3).
  EXPECT_NEAR(bundle.cosine(a), 1.0 / std::sqrt(3.0), 0.05);
  const IntVector outsider = IntVector::random_bipolar(10000, rng);
  EXPECT_LT(std::abs(bundle.cosine(outsider)), 0.05);
}

TEST(BipolarLevelEncoder, EndpointsOrthogonal) {
  const BipolarLevelEncoder enc(10000, 0.0, 1.0, 9);
  EXPECT_NEAR(enc.encode(0.0).cosine(enc.encode(1.0)), 0.0, 1e-3);
}

TEST(BipolarLevelEncoder, SimilarityLinearInValue) {
  const BipolarLevelEncoder enc(10000, 0.0, 100.0, 10);
  const IntVector v0 = enc.encode(0.0);
  const double c25 = v0.cosine(enc.encode(25.0));
  const double c50 = v0.cosine(enc.encode(50.0));
  const double c75 = v0.cosine(enc.encode(75.0));
  EXPECT_NEAR(c25, 0.75, 0.01);
  EXPECT_NEAR(c50, 0.50, 0.01);
  EXPECT_NEAR(c75, 0.25, 0.01);
}

TEST(BipolarLevelEncoder, ClampsOutOfRange) {
  const BipolarLevelEncoder enc(1000, 0.0, 1.0, 11);
  EXPECT_EQ(enc.encode(-3.0), enc.encode(0.0));
  EXPECT_EQ(enc.encode(9.0), enc.encode(1.0));
}

TEST(BipolarLevelEncoder, RejectsBadArguments) {
  EXPECT_THROW(BipolarLevelEncoder(0, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(BipolarLevelEncoder(100, 2.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::hv
