#include "data/preprocess.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace hdc::data {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset with_missing() {
  Dataset ds({{"x", ColumnKind::kContinuous}, {"y", ColumnKind::kContinuous}});
  ds.add_row(std::vector<double>{1.0, 10.0}, 0);
  ds.add_row(std::vector<double>{2.0, kNaN}, 0);
  ds.add_row(std::vector<double>{3.0, 30.0}, 0);
  ds.add_row(std::vector<double>{100.0, kNaN}, 1);
  ds.add_row(std::vector<double>{200.0, 80.0}, 1);
  ds.add_row(std::vector<double>{300.0, 90.0}, 1);
  return ds;
}

TEST(RemoveMissingRows, DropsOnlyIncompleteRows) {
  const Dataset clean = remove_missing_rows(with_missing());
  EXPECT_EQ(clean.n_rows(), 4u);
  EXPECT_EQ(clean.rows_with_missing(), 0u);
  const auto [neg, pos] = clean.class_counts();
  EXPECT_EQ(neg, 2u);
  EXPECT_EQ(pos, 2u);
}

TEST(RemoveMissingRows, NoopOnCompleteData) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  ds.add_row(std::vector<double>{1.0}, 0);
  ds.add_row(std::vector<double>{2.0}, 1);
  EXPECT_EQ(remove_missing_rows(ds).n_rows(), 2u);
}

TEST(ImputeClassMedian, FillsWithClassMedian) {
  const Dataset imputed = impute_class_median(with_missing());
  EXPECT_EQ(imputed.rows_with_missing(), 0u);
  // Negative-class median of y over {10, 30} = 20.
  EXPECT_DOUBLE_EQ(imputed.value(1, 1), 20.0);
  // Positive-class median of y over {80, 90} = 85.
  EXPECT_DOUBLE_EQ(imputed.value(3, 1), 85.0);
}

TEST(ImputeClassMedian, LeaksLabelInformation) {
  // The defining property of Pima M: the imputed value differs by class, so
  // a model can exploit it. Same column, same missingness, different fill.
  const Dataset imputed = impute_class_median(with_missing());
  EXPECT_NE(imputed.value(1, 1), imputed.value(3, 1));
}

TEST(ImputeMedian, UsesOverallMedian) {
  const Dataset imputed = impute_median(with_missing());
  EXPECT_EQ(imputed.rows_with_missing(), 0u);
  // Overall median of y over {10, 30, 80, 90} = 55.
  EXPECT_DOUBLE_EQ(imputed.value(1, 1), 55.0);
  EXPECT_DOUBLE_EQ(imputed.value(3, 1), 55.0);
}

TEST(ImputeKeepsPresentValues, Intact) {
  const Dataset imputed = impute_class_median(with_missing());
  EXPECT_DOUBLE_EQ(imputed.value(0, 1), 10.0);
  EXPECT_DOUBLE_EQ(imputed.value(5, 1), 90.0);
}

TEST(MinMaxScaler, ScalesToUnitInterval) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  for (const double v : {0.0, 5.0, 10.0}) ds.add_row(std::vector<double>{v}, 0);
  MinMaxScaler scaler;
  scaler.fit(ds);
  const Dataset out = scaler.transform(ds);
  EXPECT_DOUBLE_EQ(out.value(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.value(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(out.value(2, 0), 1.0);
}

TEST(MinMaxScaler, TrainRangeAppliesToTest) {
  Dataset train({{"x", ColumnKind::kContinuous}});
  train.add_row(std::vector<double>{0.0}, 0);
  train.add_row(std::vector<double>{10.0}, 1);
  Dataset test({{"x", ColumnKind::kContinuous}});
  test.add_row(std::vector<double>{20.0}, 0);  // outside the train range
  MinMaxScaler scaler;
  scaler.fit(train);
  EXPECT_DOUBLE_EQ(scaler.transform(test).value(0, 0), 2.0);
}

TEST(MinMaxScaler, MissingPassesThrough) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  ds.add_row(std::vector<double>{0.0}, 0);
  ds.add_row(std::vector<double>{kNaN}, 1);
  ds.add_row(std::vector<double>{4.0}, 0);
  MinMaxScaler scaler;
  scaler.fit(ds);
  EXPECT_TRUE(Dataset::is_missing(scaler.transform(ds).value(1, 0)));
}

TEST(MinMaxScaler, UnfittedThrows) {
  const MinMaxScaler scaler;
  EXPECT_THROW((void)scaler.transform(with_missing()), std::logic_error);
}

TEST(MinMaxScaler, ConstantColumnMapsToZero) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  ds.add_row(std::vector<double>{7.0}, 0);
  ds.add_row(std::vector<double>{7.0}, 1);
  MinMaxScaler scaler;
  scaler.fit(ds);
  EXPECT_DOUBLE_EQ(scaler.transform(ds).value(0, 0), 0.0);
}

TEST(StandardScaler, ZeroMeanUnitVariance) {
  Dataset ds({{"x", ColumnKind::kContinuous}});
  for (const double v : {2.0, 4.0, 6.0, 8.0}) ds.add_row(std::vector<double>{v}, 0);
  StandardScaler scaler;
  scaler.fit(ds);
  const Dataset out = scaler.transform(ds);
  double mean = 0.0;
  double var = 0.0;
  for (std::size_t i = 0; i < out.n_rows(); ++i) mean += out.value(i, 0);
  mean /= 4.0;
  for (std::size_t i = 0; i < out.n_rows(); ++i) {
    var += (out.value(i, 0) - mean) * (out.value(i, 0) - mean);
  }
  var /= 4.0;
  EXPECT_NEAR(mean, 0.0, 1e-12);
  EXPECT_NEAR(var, 1.0, 1e-12);
}

TEST(StandardScaler, ColumnCountMismatchThrows) {
  StandardScaler scaler;
  Dataset one({{"x", ColumnKind::kContinuous}});
  one.add_row(std::vector<double>{1.0}, 0);
  scaler.fit(one);
  Dataset two({{"x", ColumnKind::kContinuous}, {"y", ColumnKind::kContinuous}});
  two.add_row(std::vector<double>{1.0, 2.0}, 0);
  EXPECT_THROW((void)scaler.transform(two), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::data
