// Metamorphic properties of the HDC operator algebra — relations that must
// hold for ANY vectors, checked over random instances and dimensionalities.
#include <gtest/gtest.h>

#include "hv/bitvector.hpp"
#include "hv/ops.hpp"
#include "util/rng.hpp"

namespace hdc::hv {
namespace {

struct PropertyCase {
  std::size_t dim;
  std::uint64_t seed;
};

class HvPropertySweep : public ::testing::TestWithParam<PropertyCase> {
 protected:
  [[nodiscard]] BitVector rand_vec(util::Rng& rng) const {
    return BitVector::random(GetParam().dim, rng);
  }
};

TEST_P(HvPropertySweep, BindingPreservesDistance) {
  // d(a ^ c, b ^ c) == d(a, b): XOR binding is an isometry.
  util::Rng rng(GetParam().seed);
  const BitVector a = rand_vec(rng);
  const BitVector b = rand_vec(rng);
  const BitVector c = rand_vec(rng);
  EXPECT_EQ((a ^ c).hamming(b ^ c), a.hamming(b));
}

TEST_P(HvPropertySweep, RotationPreservesDistance) {
  util::Rng rng(GetParam().seed + 1);
  const BitVector a = rand_vec(rng);
  const BitVector b = rand_vec(rng);
  for (const std::size_t k : {1u, 7u, 63u, 64u, 65u}) {
    EXPECT_EQ(a.rotated(k).hamming(b.rotated(k)), a.hamming(b)) << k;
  }
}

TEST_P(HvPropertySweep, XorIsAssociativeAndCommutative) {
  util::Rng rng(GetParam().seed + 2);
  const BitVector a = rand_vec(rng);
  const BitVector b = rand_vec(rng);
  const BitVector c = rand_vec(rng);
  EXPECT_EQ((a ^ b) ^ c, a ^ (b ^ c));
  EXPECT_EQ(a ^ b, b ^ a);
}

TEST_P(HvPropertySweep, HammingViaXorPopcount) {
  // d(a, b) == popcount(a ^ b): the identity the fast path exploits.
  util::Rng rng(GetParam().seed + 3);
  const BitVector a = rand_vec(rng);
  const BitVector b = rand_vec(rng);
  EXPECT_EQ(a.hamming(b), (a ^ b).popcount());
}

TEST_P(HvPropertySweep, ComplementDistanceIdentity) {
  // d(a, ~b) == dim - d(a, b).
  util::Rng rng(GetParam().seed + 4);
  const BitVector a = rand_vec(rng);
  BitVector b = rand_vec(rng);
  const std::size_t d = a.hamming(b);
  b.invert();
  EXPECT_EQ(a.hamming(b), GetParam().dim - d);
}

TEST_P(HvPropertySweep, MajorityCommutesWithBinding) {
  // majority(a^k, b^k, c^k) == majority(a, b, c) ^ k for any key k: bundling
  // and binding commute, which is what makes record structures composable.
  util::Rng rng(GetParam().seed + 5);
  const BitVector a = rand_vec(rng);
  const BitVector b = rand_vec(rng);
  const BitVector c = rand_vec(rng);
  const BitVector key = rand_vec(rng);
  const std::vector<BitVector> plain = {a, b, c};
  const std::vector<BitVector> bound = {a ^ key, b ^ key, c ^ key};
  EXPECT_EQ(majority(bound), majority(plain) ^ key);
}

TEST_P(HvPropertySweep, MajorityIsPermutationInvariant) {
  util::Rng rng(GetParam().seed + 6);
  const BitVector a = rand_vec(rng);
  const BitVector b = rand_vec(rng);
  const BitVector c = rand_vec(rng);
  const std::vector<BitVector> abc = {a, b, c};
  const std::vector<BitVector> cba = {c, b, a};
  EXPECT_EQ(majority(abc), majority(cba));
}

TEST_P(HvPropertySweep, MajorityBoundedByInputs) {
  // The bundle's distance to any input is at most dim/2 + slack; for odd
  // counts of random vectors it concentrates strictly below half.
  util::Rng rng(GetParam().seed + 7);
  std::vector<BitVector> inputs;
  for (int i = 0; i < 5; ++i) inputs.push_back(rand_vec(rng));
  const BitVector m = majority(inputs);
  for (const BitVector& v : inputs) {
    EXPECT_LT(m.hamming_fraction(v), 0.5);
  }
}

TEST_P(HvPropertySweep, AccumulatorOrderIndependent) {
  util::Rng rng(GetParam().seed + 8);
  std::vector<BitVector> inputs;
  for (int i = 0; i < 6; ++i) inputs.push_back(rand_vec(rng));
  BitAccumulator forward(GetParam().dim);
  BitAccumulator backward(GetParam().dim);
  for (const BitVector& v : inputs) forward.add(v);
  for (auto it = inputs.rbegin(); it != inputs.rend(); ++it) backward.add(*it);
  EXPECT_EQ(forward.to_majority(), backward.to_majority());
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndSeeds, HvPropertySweep,
    ::testing::Values(PropertyCase{64, 1}, PropertyCase{100, 2},
                      PropertyCase{1000, 3}, PropertyCase{4096, 4},
                      PropertyCase{10000, 5}, PropertyCase{10000, 6},
                      PropertyCase{20000, 7}));

}  // namespace
}  // namespace hdc::hv
