#include "nn/matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace hdc::nn {
namespace {

Matrix from_values(std::size_t rows, std::size_t cols,
                   std::initializer_list<double> values) {
  Matrix m(rows, cols);
  std::size_t i = 0;
  for (const double v : values) m.data()[i++] = v;
  return m;
}

/// Deterministic pseudo-random fill with a sprinkling of exact zeros, so the
/// blocked kernels' zero-skip paths are exercised on every shape.
Matrix patterned(std::size_t rows, std::size_t cols, std::uint64_t salt) {
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      std::uint64_t h = (r * 1315423911u) ^ (c * 2654435761u) ^ (salt * 97u);
      h ^= h >> 33;
      h *= 0xff51afd7ed558ccdULL;
      h ^= h >> 33;
      m.at(r, c) =
          (h % 5 == 0) ? 0.0 : (static_cast<double>(h % 2001) - 1000.0) / 256.0;
    }
  }
  return m;
}

/// Restores the HDC_NN_BLOCKED-derived default on scope exit.
struct BlockedGuard {
  ~BlockedGuard() { reset_blocked_matmul(); }
};

TEST(Matrix, ConstructionAndAccess) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 1.5);
  m.at(0, 1) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

TEST(Matrix, RowSpan) {
  Matrix m = from_values(2, 2, {1, 2, 3, 4});
  const auto r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 3.0);
  EXPECT_DOUBLE_EQ(r[1], 4.0);
}

TEST(Matrix, Fill) {
  Matrix m(3, 3, 9.0);
  m.fill(0.0);
  for (std::size_t i = 0; i < m.size(); ++i) EXPECT_DOUBLE_EQ(m.data()[i], 0.0);
}

TEST(Matrix, MatmulKnownValues) {
  const Matrix a = from_values(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = from_values(3, 2, {7, 8, 9, 10, 11, 12});
  const Matrix c = a.matmul(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 154.0);
}

TEST(Matrix, MatmulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 2);
  EXPECT_THROW((void)a.matmul(b), std::invalid_argument);
}

TEST(Matrix, MatmulWithZerosSkipsCorrectly) {
  // The sparse-row fast path must not change results.
  const Matrix a = from_values(2, 3, {0, 2, 0, 1, 0, 3});
  const Matrix b = from_values(3, 2, {1, 2, 3, 4, 5, 6});
  const Matrix c = a.matmul(b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 16.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 20.0);
}

TEST(Matrix, TransposedMatmulMatchesExplicit) {
  // a^T * b where a is (2x3) treated as transposed -> (3x2) result with b (2x2).
  const Matrix a = from_values(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = from_values(2, 2, {1, 0, 0, 1});
  const Matrix c = a.transposed_matmul(b);  // (3 x 2)
  ASSERT_EQ(c.rows(), 3u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(c.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.at(2, 1), 6.0);
}

TEST(Matrix, TransposedMatmulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(3, 2);
  EXPECT_THROW((void)a.transposed_matmul(b), std::invalid_argument);
}

TEST(Matrix, MatmulTransposedMatchesExplicit) {
  // a (2x3) * b^T where b is (2x3) -> (2x2).
  const Matrix a = from_values(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix b = from_values(2, 3, {1, 1, 1, 2, 2, 2});
  const Matrix c = a.matmul_transposed(b);
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 12.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 15.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 30.0);
}

TEST(Matrix, MatmulTransposedShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 4);
  EXPECT_THROW((void)a.matmul_transposed(b), std::invalid_argument);
}

TEST(MatrixBlocked, SwitchTogglesAndResets) {
  BlockedGuard guard;
  set_blocked_matmul(false);
  EXPECT_FALSE(blocked_matmul_enabled());
  set_blocked_matmul(true);
  EXPECT_TRUE(blocked_matmul_enabled());
  reset_blocked_matmul();
  EXPECT_TRUE(blocked_matmul_enabled());  // default-on (HDC_NN_BLOCKED unset)
}

TEST(MatrixBlocked, AllKernelsMatchReferenceExactly) {
  // The blocked kernels keep the naive loops' per-output-element accumulation
  // order, so parity here is exact equality, not a tolerance. Shapes cover
  // the degenerate 1x1, ragged sub-block sizes, a row-block crossing (768 >
  // kRowBlock), a depth-block crossing (300 > kDepthBlock), and non-multiple
  // quad tails.
  struct Shape {
    std::size_t m, k, n;
  };
  const Shape shapes[] = {{1, 1, 1},    {17, 3, 4},   {33, 65, 7},
                          {768, 32, 33}, {130, 300, 5}, {64, 256, 32}};
  BlockedGuard guard;
  for (const Shape& s : shapes) {
    SCOPED_TRACE(::testing::Message()
                 << "m=" << s.m << " k=" << s.k << " n=" << s.n);
    const Matrix a = patterned(s.m, s.k, 1);
    const Matrix b = patterned(s.k, s.n, 2);
    const Matrix c = patterned(s.m, s.n, 3);
    const Matrix bt = patterned(s.n, s.k, 4);

    set_blocked_matmul(false);
    const Matrix ref_mm = a.matmul(b);             // (m x n)
    const Matrix ref_tm = a.transposed_matmul(c);  // (k x n)
    const Matrix ref_mt = a.matmul_transposed(bt); // (m x n)

    set_blocked_matmul(true);
    const Matrix blk_mm = a.matmul(b);
    const Matrix blk_tm = a.transposed_matmul(c);
    const Matrix blk_mt = a.matmul_transposed(bt);

    ASSERT_EQ(blk_mm.size(), ref_mm.size());
    ASSERT_EQ(blk_tm.size(), ref_tm.size());
    ASSERT_EQ(blk_mt.size(), ref_mt.size());
    for (std::size_t i = 0; i < ref_mm.size(); ++i) {
      ASSERT_EQ(blk_mm.data()[i], ref_mm.data()[i]) << "matmul flat=" << i;
    }
    for (std::size_t i = 0; i < ref_tm.size(); ++i) {
      ASSERT_EQ(blk_tm.data()[i], ref_tm.data()[i])
          << "transposed_matmul flat=" << i;
    }
    for (std::size_t i = 0; i < ref_mt.size(); ++i) {
      ASSERT_EQ(blk_mt.data()[i], ref_mt.data()[i])
          << "matmul_transposed flat=" << i;
    }
  }
}

TEST(Matrix, IdentityComposition) {
  // (A * I) == A for a random-ish matrix.
  const Matrix a = from_values(2, 2, {3, -1, 2.5, 4});
  const Matrix eye = from_values(2, 2, {1, 0, 0, 1});
  const Matrix c = a.matmul(eye);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(c.data()[i], a.data()[i]);
  }
}

}  // namespace
}  // namespace hdc::nn
