// fit_shards contracts: every zoo model (plus Naive Bayes) must fit to
// byte-identical state and predictions at any shard count; the models with
// exact merge paths must additionally match their unsharded reference; the
// experiment pipeline's max_resident_rows knob must not change results; and
// the ml.hist_merge_ops counter must account for the merges.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/extractor.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/sharded_bits.hpp"
#include "ml/forest.hpp"
#include "ml/gbdt.hpp"
#include "ml/hist_gbdt.hpp"
#include "ml/knn.hpp"
#include "ml/logistic.hpp"
#include "ml/naive_bayes.hpp"
#include "ml/ordered_gbdt.hpp"
#include "ml/sgd.hpp"
#include "ml/sharded.hpp"
#include "ml/svm.hpp"
#include "ml/tree.hpp"
#include "obs/metrics.hpp"

namespace {

using hdc::ml::Classifier;
using hdc::ml::MaterializedShardSource;

constexpr std::size_t kRows = 300;
constexpr std::size_t kDim = 96;

std::string state_of(const Classifier& model) {
  std::ostringstream out;
  model.save_state(out);
  return out.str();
}

struct Fixture {
  hdc::data::Dataset ds;
  hdc::hv::BitMatrix whole;
  std::vector<hdc::hv::ShardedBitMatrix> sharded;  // 1, 4, 8 shards
  hdc::hv::BitMatrix test_bits;
};

const Fixture& fixture() {
  static const Fixture* cached = [] {
    auto* f = new Fixture;
    f->ds = hdc::data::make_synthetic_cohort(kRows + 60, 21);
    std::vector<std::size_t> train_idx(kRows);
    std::vector<std::size_t> test_idx(60);
    for (std::size_t i = 0; i < kRows; ++i) train_idx[i] = i;
    for (std::size_t i = 0; i < 60; ++i) test_idx[i] = kRows + i;
    const hdc::data::Dataset test_ds = f->ds.subset(test_idx);
    f->ds = f->ds.subset(train_idx);

    hdc::core::ExtractorConfig config;
    config.dimensions = kDim;
    config.seed = 19;
    hdc::core::HdcFeatureExtractor extractor(config);
    extractor.fit(f->ds);
    f->whole = extractor.transform_bits(f->ds);
    f->test_bits = extractor.transform_bits(test_ds);
    for (const std::size_t count : {1u, 4u, 8u}) {
      f->sharded.push_back(extractor.transform_bits_chunked(
          f->ds, (kRows + count - 1) / count));
    }
    return f;
  }();
  return *cached;
}

struct ModelSpec {
  std::string name;
  std::function<std::unique_ptr<Classifier>()> make;
};

std::vector<ModelSpec> zoo() {
  using namespace hdc::ml;
  std::vector<ModelSpec> models;
  models.push_back({"Random Forest", [] {
    ForestConfig config;
    config.n_trees = 5;
    config.tree.max_depth = 5;
    return std::make_unique<RandomForest>(config);
  }});
  models.push_back({"KNN", [] { return std::make_unique<KnnClassifier>(); }});
  models.push_back({"Decision Tree", [] {
    TreeConfig config;
    config.max_depth = 4;
    return std::make_unique<DecisionTree>(config);
  }});
  models.push_back({"XGBoost", [] {
    GbdtConfig config;
    config.n_rounds = 5;
    config.max_depth = 3;
    return std::make_unique<GbdtClassifier>(config);
  }});
  models.push_back({"CatBoost", [] {
    OrderedGbdtConfig config;
    config.n_rounds = 5;
    config.depth = 3;
    return std::make_unique<OrderedGbdtClassifier>(config);
  }});
  models.push_back({"SGD", [] {
    SgdConfig config;
    config.epochs = 2;
    return std::make_unique<SgdClassifier>(config);
  }});
  models.push_back({"Logistic Regression", [] {
    LogisticConfig config;
    config.max_iter = 20;
    return std::make_unique<LogisticRegression>(config);
  }});
  models.push_back({"SVC", [] { return std::make_unique<SvcClassifier>(); }});
  models.push_back({"LGBM", [] {
    HistGbdtConfig config;
    config.n_rounds = 5;
    config.num_leaves = 6;
    return std::make_unique<HistGbdtClassifier>(config);
  }});
  models.push_back({"Naive Bayes",
                    [] { return std::make_unique<NaiveBayesClassifier>(); }});
  return models;
}

// The central contract: 1-shard, 4-shard and 8-shard fits are
// byte-identical in state and prediction for every model.
TEST(ShardedFit, EveryModelIsShardCountInvariant) {
  const Fixture& f = fixture();
  for (const ModelSpec& spec : zoo()) {
    std::string base_state;
    std::vector<int> base_pred;
    for (std::size_t v = 0; v < f.sharded.size(); ++v) {
      const std::unique_ptr<Classifier> model = spec.make();
      const MaterializedShardSource src(f.sharded[v], f.ds.labels());
      model->fit_shards(src);
      if (v == 0) {
        base_state = state_of(*model);
        base_pred = model->predict_all_bits(f.test_bits);
      } else {
        EXPECT_EQ(state_of(*model), base_state)
            << spec.name << " state at " << f.sharded[v].num_shards()
            << " shards";
        EXPECT_EQ(model->predict_all_bits(f.test_bits), base_pred)
            << spec.name << " predictions at " << f.sharded[v].num_shards()
            << " shards";
      }
    }
  }
}

// Logistic's sharded fit carries its accumulators across shards in global
// row order, so it must equal the unsharded fit_bits bit for bit.
TEST(ShardedFit, LogisticMatchesFitBitsExactly) {
  const Fixture& f = fixture();
  hdc::ml::LogisticConfig config;
  config.max_iter = 20;
  hdc::ml::LogisticRegression reference(config);
  reference.fit_bits(f.whole, f.ds.labels());
  hdc::ml::LogisticRegression sharded(config);
  const MaterializedShardSource src(f.sharded[2], f.ds.labels());
  static_cast<Classifier&>(sharded).fit_shards(src);
  EXPECT_EQ(state_of(sharded), state_of(reference));
}

// Naive Bayes on 0/1 data: popcount merges equal the dense accumulators.
TEST(ShardedFit, NaiveBayesMatchesFitBitsExactly) {
  const Fixture& f = fixture();
  hdc::ml::NaiveBayesClassifier reference;
  reference.fit_bits(f.whole, f.ds.labels());
  hdc::ml::NaiveBayesClassifier sharded;
  const MaterializedShardSource src(f.sharded[1], f.ds.labels());
  static_cast<Classifier&>(sharded).fit_shards(src);
  EXPECT_EQ(state_of(sharded), state_of(reference));
}

// SVC gathers a strided subsample capped at options.subsample_cap; when the
// cohort fits under the cap the subsample is every row, so the sharded fit
// equals fit_bits exactly.
TEST(ShardedFit, SvcMatchesFitBitsWhenUnderTheCap) {
  const Fixture& f = fixture();
  ASSERT_LE(kRows, hdc::ml::ShardedFitOptions{}.subsample_cap);
  hdc::ml::SvcClassifier reference;
  reference.fit_bits(f.whole, f.ds.labels());
  hdc::ml::SvcClassifier sharded;
  const MaterializedShardSource src(f.sharded[2], f.ds.labels());
  static_cast<Classifier&>(sharded).fit_shards(src);
  EXPECT_EQ(state_of(sharded), state_of(reference));
}

// KNN is its training set: the sharded gather must reproduce fit_bits.
TEST(ShardedFit, KnnMatchesFitBitsExactly) {
  const Fixture& f = fixture();
  hdc::ml::KnnClassifier reference;
  reference.fit_bits(f.whole, f.ds.labels());
  hdc::ml::KnnClassifier sharded;
  const MaterializedShardSource src(f.sharded[1], f.ds.labels());
  static_cast<Classifier&>(sharded).fit_shards(src);
  EXPECT_EQ(state_of(sharded), state_of(reference));
}

// The base-class fallback (XGBoost has no packed fast path) must still be
// shard-count invariant: the strided subsample is a pure function of
// (rows, cap).
TEST(ShardedFit, StridedSubsampleIsDeterministic) {
  const std::vector<std::size_t> a = hdc::ml::strided_subsample(1000, 64);
  const std::vector<std::size_t> b = hdc::ml::strided_subsample(1000, 64);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 64u);
  for (std::size_t i = 1; i < a.size(); ++i) EXPECT_LT(a[i - 1], a[i]);
  // Under the cap: identity selection.
  const std::vector<std::size_t> all = hdc::ml::strided_subsample(50, 64);
  ASSERT_EQ(all.size(), 50u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(ShardedFit, HistMergeOpsCounterAccountsForMerges) {
  const Fixture& f = fixture();
  hdc::obs::set_enabled(true);
  const std::uint64_t before =
      hdc::obs::snapshot().counter_value("ml.hist_merge_ops");
  hdc::ml::HistGbdtConfig config;
  config.n_rounds = 2;
  config.num_leaves = 4;
  hdc::ml::HistGbdtClassifier model(config);
  const MaterializedShardSource src(f.sharded[1], f.ds.labels());
  static_cast<Classifier&>(model).fit_shards(src);
  const std::uint64_t after =
      hdc::obs::snapshot().counter_value("ml.hist_merge_ops");
  hdc::obs::set_enabled(false);
  EXPECT_GT(after, before);
}

// The pipeline knob: any positive max_resident_rows routes folds through
// fit_shards, and the result must not depend on the actual value.
TEST(ShardedFit, ExperimentIsInvariantToMaxResidentRows) {
  const hdc::data::Dataset ds = hdc::data::make_synthetic_cohort(240, 33);
  hdc::core::ExperimentConfig base;
  base.extractor.dimensions = kDim;
  base.extractor.seed = 3;
  base.seed = 7;

  hdc::core::ExperimentConfig small_shards = base;
  small_shards.max_resident_rows = 50;
  hdc::core::ExperimentConfig one_shard = base;
  one_shard.max_resident_rows = 1u << 20;

  for (const std::string model : {"Naive Bayes", "Logistic Regression"}) {
    const hdc::eval::CvResult a = hdc::core::kfold_cv_accuracy(
        ds, model, hdc::core::InputMode::kHypervectors, 4, small_shards);
    const hdc::eval::CvResult b = hdc::core::kfold_cv_accuracy(
        ds, model, hdc::core::InputMode::kHypervectors, 4, one_shard);
    EXPECT_EQ(a.fold_accuracy, b.fold_accuracy) << model;
  }

  // Logistic's sharded path is bit-identical to the unsharded one, so the
  // knob being off entirely must also agree.
  const hdc::eval::CvResult sharded = hdc::core::kfold_cv_accuracy(
      ds, "Logistic Regression", hdc::core::InputMode::kHypervectors, 4,
      small_shards);
  const hdc::eval::CvResult unsharded = hdc::core::kfold_cv_accuracy(
      ds, "Logistic Regression", hdc::core::InputMode::kHypervectors, 4, base);
  EXPECT_EQ(sharded.fold_accuracy, unsharded.fold_accuracy);
}

TEST(ShardedFit, ManifestRecordsShardGeometry) {
  const hdc::data::Dataset ds = hdc::data::make_synthetic_cohort(100, 1);
  hdc::core::ExperimentConfig config;
  config.max_resident_rows = 30;
  const hdc::core::RunManifest m =
      hdc::core::make_run_manifest(ds, "cohort", config);
  EXPECT_EQ(m.shard_rows, 30u);
  EXPECT_EQ(m.num_shards, 4u);  // 30 + 30 + 30 + 10
  const std::string json = hdc::core::to_json(m);
  EXPECT_NE(json.find("\"shard_rows\":30"), std::string::npos);
  EXPECT_NE(json.find("\"num_shards\":4"), std::string::npos);
}

}  // namespace
