#include "core/experiment.hpp"

#include <gtest/gtest.h>

#include "data/preprocess.hpp"
#include "data/synthetic.hpp"

namespace hdc::core {
namespace {

ExperimentConfig fast_config() {
  ExperimentConfig config;
  config.extractor.dimensions = 1000;
  config.model_budget = 0.2;
  return config;
}

data::Dataset small_sylhet() { return data::make_sylhet({60, 90, 31}); }

TEST(Experiment, InputModeNames) {
  EXPECT_EQ(to_string(InputMode::kRawFeatures), "Features");
  EXPECT_EQ(to_string(InputMode::kHypervectors), "Hypervectors");
}

TEST(Experiment, KfoldRawFeaturesBeatsChance) {
  const auto cv = kfold_cv_accuracy(small_sylhet(), "Decision Tree",
                                    InputMode::kRawFeatures, 5, fast_config());
  EXPECT_EQ(cv.fold_accuracy.size(), 5u);
  EXPECT_GT(cv.mean_accuracy, 0.75);
}

TEST(Experiment, KfoldHypervectorsBeatsChance) {
  const auto cv = kfold_cv_accuracy(small_sylhet(), "Logistic Regression",
                                    InputMode::kHypervectors, 5, fast_config());
  EXPECT_GT(cv.mean_accuracy, 0.75);
}

TEST(Experiment, KfoldIsDeterministic) {
  const data::Dataset ds = small_sylhet();
  const auto a = kfold_cv_accuracy(ds, "KNN", InputMode::kRawFeatures, 5,
                                   fast_config());
  const auto b = kfold_cv_accuracy(ds, "KNN", InputMode::kRawFeatures, 5,
                                   fast_config());
  EXPECT_EQ(a.fold_accuracy, b.fold_accuracy);
}

TEST(Experiment, HoldoutMetricsComplete) {
  const auto m = holdout_metrics(small_sylhet(), "Random Forest",
                                 InputMode::kHypervectors, 0.2, fast_config());
  EXPECT_GT(m.accuracy, 0.7);
  EXPECT_GT(m.f1, 0.7);
  EXPECT_EQ(m.confusion.total(), 30u);  // 20% of 150
}

TEST(Experiment, HammingLooOnSylhet) {
  const auto m = hamming_loo(small_sylhet(), fast_config());
  EXPECT_GT(m.accuracy, 0.8);
}

TEST(Experiment, HammingLooOnPimaR) {
  const data::Dataset pima_r =
      data::remove_missing_rows(data::make_pima({200, 104, true, 0.05, 32}));
  const auto m = hamming_loo(pima_r, fast_config());
  EXPECT_GT(m.accuracy, 0.55);  // paper: ~0.71 at full size
  EXPECT_LT(m.accuracy, 0.95);  // Pima R is genuinely hard
}

TEST(Experiment, NnProtocolRuns) {
  nn::SequentialConfig nn_config;
  nn_config.max_epochs = 40;
  nn_config.patience = 8;
  const auto result = nn_protocol(small_sylhet(), InputMode::kRawFeatures, 2,
                                  fast_config(), nn_config);
  EXPECT_GT(result.mean_test_accuracy, 0.6);
  EXPECT_GT(result.mean_epochs, 0.0);
  EXPECT_LE(result.mean_epochs, 40.0);
}

TEST(Experiment, NnProtocolZeroRepeatsThrows) {
  EXPECT_THROW((void)nn_protocol(small_sylhet(), InputMode::kRawFeatures, 0,
                                 fast_config()),
               std::invalid_argument);
}

TEST(Experiment, UnknownModelNamePropagates) {
  EXPECT_THROW((void)kfold_cv_accuracy(small_sylhet(), "NoSuchModel",
                                       InputMode::kRawFeatures, 5, fast_config()),
               std::invalid_argument);
}

TEST(Experiment, PimaMEasierThanPimaR) {
  // The class-median imputation leak: every model family finds Pima M easier
  // than Pima R. Check with the cheap KNN.
  const data::Dataset raw = data::make_pima({250, 134, true, 0.05, 33});
  const data::Dataset pima_r = data::remove_missing_rows(raw);
  const data::Dataset pima_m = data::impute_class_median(raw);
  const auto cv_r = kfold_cv_accuracy(pima_r, "KNN", InputMode::kRawFeatures, 5,
                                      fast_config());
  const auto cv_m = kfold_cv_accuracy(pima_m, "KNN", InputMode::kRawFeatures, 5,
                                      fast_config());
  EXPECT_GT(cv_m.mean_accuracy + 0.03, cv_r.mean_accuracy);
}

}  // namespace
}  // namespace hdc::core
