// Deterministic corruption fuzzing for the bundle loader: truncations at
// every offset stride, bit flips at seeded positions, version bumps, bad
// checksums, duplicate / unknown sections, and plain garbage. The loader's
// contract under attack is narrow — either throw a descriptive
// std::runtime_error, or (when the mutation is semantically invisible, e.g.
// a dropped trailing newline) load a bundle that re-serializes byte-identical
// to the pristine artifact. It must never crash, hang, or return a silently
// different model; the suite is ASan/UBSan-clean under the sanitizer configs.
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle.hpp"
#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "data/synthetic.hpp"
#include "hv/ann.hpp"
#include "ml/zoo.hpp"
#include "util/rng.hpp"
#include "util/serde.hpp"

namespace {

using hdc::core::load_bundle;
using hdc::core::ModelBundle;
using hdc::core::save_bundle;

/// Pristine multi-section bundle (extractor + two zoo models), built once.
const std::string& golden_bundle() {
  static const std::string artifact = [] {
    const hdc::data::Dataset ds = hdc::data::make_sylhet({30, 40, 3});
    hdc::core::ExtractorConfig config;
    config.dimensions = 256;
    config.seed = 7;
    ModelBundle bundle;
    bundle.extractor.emplace(config);
    bundle.extractor->fit(ds);
    const hdc::hv::BitMatrix bits = bundle.extractor->transform_bits(ds);
    for (const char* name : {"Logistic Regression", "Decision Tree"}) {
      auto model = hdc::ml::make_model(name, 0.2);
      model->fit_bits(bits, ds.labels());
      bundle.models.push_back(std::move(model));
    }
    std::ostringstream out;
    save_bundle(out, bundle);
    return out.str();
  }();
  return artifact;
}

/// Pristine bundle carrying a hamming predictor with an attached ANN index
/// (an `ann` section alongside `hamming`), built once.
const std::string& golden_ann_bundle() {
  static const std::string artifact = [] {
    const hdc::data::Dataset ds = hdc::data::make_sylhet({30, 40, 3});
    hdc::core::ExtractorConfig config;
    config.dimensions = 256;
    config.seed = 7;
    ModelBundle bundle;
    bundle.extractor.emplace(config);
    bundle.extractor->fit(ds);
    hdc::core::HammingClassifier hamming;
    hamming.fit(bundle.extractor->transform(ds), ds.labels());
    hamming.enable_ann();
    bundle.hamming = std::move(hamming);
    std::ostringstream out;
    save_bundle(out, bundle);
    return out.str();
  }();
  return artifact;
}

/// The fuzz oracle: a mutated artifact must either be rejected with a
/// std::runtime_error, or load into a bundle whose re-serialization is
/// byte-identical to the pristine one (mutations in syntactically dead
/// bytes). Anything else — a crash, another exception type, a silently
/// different model — fails the test.
void expect_rejected_or_identical(const std::string& mutated,
                                  const std::string& pristine,
                                  const std::string& label) {
  std::istringstream in(mutated);
  try {
    const ModelBundle loaded = load_bundle(in);
    std::ostringstream resaved;
    save_bundle(resaved, loaded);
    EXPECT_EQ(resaved.str(), pristine)
        << label << ": loaded without error but the state drifted";
  } catch (const std::runtime_error& e) {
    EXPECT_STRNE(e.what(), "") << label << ": error message is empty";
  }
  // Any other exception type escapes and fails the test outright.
}

void expect_rejected_or_identical(const std::string& mutated,
                                  const std::string& label) {
  expect_rejected_or_identical(mutated, golden_bundle(), label);
}

TEST(BundleCorrupt, PristineLoads) {
  std::istringstream in(golden_bundle());
  const ModelBundle loaded = load_bundle(in);
  std::ostringstream resaved;
  save_bundle(resaved, loaded);
  EXPECT_EQ(resaved.str(), golden_bundle());
}

TEST(BundleCorrupt, TruncationAtEveryStride) {
  const std::string& full = golden_bundle();
  // Every prefix at a 97-byte stride plus the final 16 byte-by-byte — the
  // tail covers the end-marker / trailing-newline edge cases precisely.
  std::vector<std::size_t> cuts;
  for (std::size_t cut = 0; cut < full.size(); cut += 97) cuts.push_back(cut);
  for (std::size_t back = 1; back <= 16 && back < full.size(); ++back) {
    cuts.push_back(full.size() - back);
  }
  for (const std::size_t cut : cuts) {
    expect_rejected_or_identical(full.substr(0, cut),
                                 "truncate@" + std::to_string(cut));
  }
}

TEST(BundleCorrupt, BitFlipsAtSeededPositions) {
  const std::string& full = golden_bundle();
  hdc::util::Rng rng(20260808);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t pos = rng.below(full.size());
    const int bit = static_cast<int>(rng.below(8));
    std::string mutated = full;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
    expect_rejected_or_identical(mutated, "flip@" + std::to_string(pos) + "." +
                                              std::to_string(bit));
  }
}

TEST(BundleCorrupt, ByteSmashAtSeededPositions) {
  const std::string& full = golden_bundle();
  hdc::util::Rng rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t pos = rng.below(full.size());
    std::string mutated = full;
    mutated[pos] = static_cast<char>(rng.below(256));
    expect_rejected_or_identical(mutated, "smash@" + std::to_string(pos));
  }
}

TEST(BundleCorrupt, VersionBumpRejected) {
  std::string mutated = golden_bundle();
  const std::size_t at = mutated.find("hdc-bundle v1");
  ASSERT_NE(at, std::string::npos);
  mutated.replace(at, 13, "hdc-bundle v2");
  std::istringstream in(mutated);
  try {
    (void)load_bundle(in);
    FAIL() << "future version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos) << e.what();
  }
}

/// Compose a syntactically valid single-section bundle by hand — the only
/// way to reach body-level parse errors past the checksum gate.
std::string craft_bundle(const std::vector<std::pair<std::string, std::string>>&
                             sections) {
  std::ostringstream out;
  out << "hdc-bundle v1\n";
  out << "sections " << sections.size() << '\n';
  for (const auto& [name, body] : sections) {
    out << "section ~" << hdc::util::serde::escape(name) << ' ' << body.size()
        << ' ' << hdc::util::serde::hex16(hdc::util::serde::fnv1a64(body))
        << '\n'
        << body << '\n';
  }
  out << "end\n";
  return out.str();
}

/// Extract one section body from the golden artifact via a save on the
/// loaded bundle member (bodies are self-contained serializer outputs).
std::string golden_model_body(const std::string& name) {
  std::istringstream in(golden_bundle());
  const ModelBundle loaded = load_bundle(in);
  std::ostringstream body;
  loaded.find_model(name)->save_state(body);
  return body.str();
}

TEST(BundleCorrupt, SectionVersionBumpRejected) {
  // Valid checksum over a body whose serializer version was bumped: the
  // corruption must be caught by the section parser, not the checksum, and
  // the diagnostic must name the section.
  std::string body = golden_model_body("Logistic Regression");
  const std::size_t at = body.find("v1");
  ASSERT_NE(at, std::string::npos);
  body.replace(at, 2, "v9");
  const std::string crafted =
      craft_bundle({{"model:Logistic Regression", body}});
  std::istringstream in(crafted);
  try {
    (void)load_bundle(in);
    FAIL() << "bumped section version accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("model:Logistic Regression"),
              std::string::npos)
        << e.what();
  }
}

TEST(BundleCorrupt, ChecksumMismatchNamesTheSection) {
  std::string artifact = golden_bundle();
  // Flip one byte inside the first section body (bytes after its header
  // line) so only the checksum can catch it.
  const std::size_t header_end = artifact.find('\n', artifact.find("section ~"));
  ASSERT_NE(header_end, std::string::npos);
  artifact[header_end + 10] = static_cast<char>(artifact[header_end + 10] ^ 1);
  std::istringstream in(artifact);
  try {
    (void)load_bundle(in);
    FAIL() << "checksum mismatch accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
  }
}

TEST(BundleCorrupt, DuplicateSectionRejected) {
  const std::string body = golden_model_body("Decision Tree");
  const std::string crafted = craft_bundle(
      {{"model:Decision Tree", body}, {"model:Decision Tree", body}});
  std::istringstream in(crafted);
  try {
    (void)load_bundle(in);
    FAIL() << "duplicate section accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(BundleCorrupt, UnknownSectionRejected) {
  const std::string crafted = craft_bundle({{"mystery", "payload"}});
  std::istringstream in(crafted);
  try {
    (void)load_bundle(in);
    FAIL() << "unknown section accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("mystery"), std::string::npos)
        << e.what();
  }
}

TEST(BundleCorrupt, UnknownModelNameRejected) {
  const std::string crafted =
      craft_bundle({{"model:Quantum Diviner", "ml.tree v1\n"}});
  std::istringstream in(crafted);
  EXPECT_THROW((void)load_bundle(in), std::runtime_error);
}

TEST(BundleCorrupt, SectionCountLiesRejected) {
  // Header promises more sections than the stream carries.
  std::string artifact = golden_bundle();
  const std::size_t at = artifact.find("sections ");
  ASSERT_NE(at, std::string::npos);
  artifact.replace(at, artifact.find('\n', at) - at, "sections 99");
  std::istringstream in(artifact);
  EXPECT_THROW((void)load_bundle(in), std::runtime_error);
}

TEST(BundleCorrupt, GarbageInputsRejected) {
  for (const char* garbage :
       {"", "\n", "hdc-bundle", "hdc-bundle v1", "hdc-bundle v1\nsections",
        "hdc-bundle v1\nsections -1\nend\n",
        "hdc-bundle v1\nsections 1000000000\n",
        "hdc-bundle v1\nsections 1\nsection noname 4 0123456789abcdef\nbody\n",
        "hdc-bundle v1\nsections 0\n", "PK\x03\x04zipfile",
        "{\"json\": true}"}) {
    SCOPED_TRACE(garbage);
    std::istringstream in(garbage);
    EXPECT_THROW((void)load_bundle(in), std::runtime_error);
  }
}

/// Raw body bytes of one named section, scanned straight out of an artifact
/// (headers are `section ~name bytes checksum`, body follows the newline).
std::string raw_section_body(const std::string& artifact,
                             const std::string& name) {
  const std::string needle = "section ~" + name + ' ';
  const std::size_t at = artifact.find(needle);
  EXPECT_NE(at, std::string::npos) << name;
  std::istringstream header(artifact.substr(at + needle.size()));
  std::size_t bytes = 0;
  header >> bytes;
  const std::size_t body_start = artifact.find('\n', at) + 1;
  return artifact.substr(body_start, bytes);
}

TEST(BundleCorrupt, AnnPristineLoadsWithIndexAttached) {
  std::istringstream in(golden_ann_bundle());
  const ModelBundle loaded = load_bundle(in);
  ASSERT_TRUE(loaded.hamming.has_value());
  EXPECT_TRUE(loaded.hamming->ann_enabled());
  std::ostringstream resaved;
  save_bundle(resaved, loaded);
  EXPECT_EQ(resaved.str(), golden_ann_bundle());
}

TEST(BundleCorrupt, AnnTruncationAtEveryStride) {
  const std::string& full = golden_ann_bundle();
  std::vector<std::size_t> cuts;
  for (std::size_t cut = 0; cut < full.size(); cut += 97) cuts.push_back(cut);
  for (std::size_t back = 1; back <= 16 && back < full.size(); ++back) {
    cuts.push_back(full.size() - back);
  }
  for (const std::size_t cut : cuts) {
    expect_rejected_or_identical(full.substr(0, cut), full,
                                 "ann-truncate@" + std::to_string(cut));
  }
}

TEST(BundleCorrupt, AnnBitFlipsAtSeededPositions) {
  const std::string& full = golden_ann_bundle();
  hdc::util::Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t pos = rng.below(full.size());
    const int bit = static_cast<int>(rng.below(8));
    std::string mutated = full;
    mutated[pos] = static_cast<char>(mutated[pos] ^ (1 << bit));
    expect_rejected_or_identical(mutated, full,
                                 "ann-flip@" + std::to_string(pos) + "." +
                                     std::to_string(bit));
  }
}

TEST(BundleCorrupt, AnnSectionWithoutHammingRejected) {
  const std::string crafted =
      craft_bundle({{"ann", raw_section_body(golden_ann_bundle(), "ann")}});
  std::istringstream in(crafted);
  try {
    (void)load_bundle(in);
    FAIL() << "orphan ann section accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("hamming"), std::string::npos)
        << e.what();
  }
}

TEST(BundleCorrupt, AnnFingerprintMismatchRejected) {
  // A valid index built over *different* rows paired with the golden hamming
  // section: every per-field check passes, only the database fingerprint can
  // catch the swap.
  const hdc::data::Dataset other = hdc::data::make_sylhet({40, 30, 9});
  hdc::core::ExtractorConfig config;
  config.dimensions = 256;
  config.seed = 7;
  hdc::core::HdcFeatureExtractor extractor(config);
  extractor.fit(other);
  const hdc::hv::ann::Index foreign =
      hdc::hv::ann::Index::build(extractor.transform_packed(other));
  std::ostringstream foreign_body;
  foreign.save(foreign_body);

  const std::string crafted = craft_bundle(
      {{"hamming", raw_section_body(golden_ann_bundle(), "hamming")},
       {"ann", foreign_body.str()}});
  std::istringstream in(crafted);
  try {
    (void)load_bundle(in);
    FAIL() << "foreign ann index accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
}

TEST(BundleCorrupt, RandomGarbageNeverCrashes) {
  hdc::util::Rng rng(404);
  for (int trial = 0; trial < 50; ++trial) {
    std::string noise(rng.below(2048), '\0');
    for (char& c : noise) c = static_cast<char>(rng.below(256));
    // Half the trials get a valid magic so the fuzz reaches the section
    // parser instead of stopping at the first line.
    if (trial % 2 == 0) noise.insert(0, "hdc-bundle v1\n");
    std::istringstream in(noise);
    EXPECT_THROW((void)load_bundle(in), std::runtime_error) << trial;
  }
}

}  // namespace
