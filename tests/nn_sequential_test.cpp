#include "nn/sequential.hpp"

#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/matrix.hpp"

namespace hdc::nn {
namespace {

SequentialConfig fast_config() {
  SequentialConfig config;
  config.max_epochs = 200;
  config.patience = 10;
  return config;
}

TEST(Sequential, LearnsSeparableBlobs) {
  const data::Dataset ds = data::make_two_gaussians(100, 4, 4.0, 81);
  Sequential net(fast_config());
  net.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(net.accuracy(ds.feature_matrix(), ds.labels()), 0.95);
}

TEST(Sequential, LearnsXor) {
  const data::Dataset ds = data::make_xor(60, 0.2, 82);
  SequentialConfig config = fast_config();
  config.max_epochs = 400;
  Sequential net(config);
  net.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(net.accuracy(ds.feature_matrix(), ds.labels()), 0.9);
}

TEST(Sequential, EarlyStoppingTriggers) {
  const data::Dataset ds = data::make_two_gaussians(60, 3, 5.0, 83);
  SequentialConfig config;
  config.max_epochs = 1000;
  config.patience = 5;
  Sequential net(config);
  net.fit(ds.feature_matrix(), ds.labels());
  // An easy problem converges long before 1000 epochs.
  EXPECT_TRUE(net.history().early_stopped);
  EXPECT_LT(net.history().train_loss.size(), 1000u);
}

TEST(Sequential, HistoryTracksLosses) {
  const data::Dataset ds = data::make_two_gaussians(50, 3, 3.0, 84);
  Sequential net(fast_config());
  net.fit(ds.feature_matrix(), ds.labels());
  const TrainHistory& h = net.history();
  ASSERT_FALSE(h.train_loss.empty());
  ASSERT_EQ(h.train_loss.size(), h.val_loss.size());
  EXPECT_LT(h.best_epoch, h.train_loss.size());
  // Loss should drop substantially from the first epoch.
  EXPECT_LT(h.train_loss.back(), h.train_loss.front());
}

TEST(Sequential, ExplicitValidationSetProtocol) {
  const data::Dataset train = data::make_two_gaussians(80, 3, 3.0, 85);
  const data::Dataset val = data::make_two_gaussians(20, 3, 3.0, 86);
  Sequential net(fast_config());
  const TrainHistory h = net.fit_with_validation(
      train.feature_matrix(), train.labels(), val.feature_matrix(), val.labels());
  EXPECT_FALSE(h.val_loss.empty());
  EXPECT_GT(net.accuracy(val.feature_matrix(), val.labels()), 0.9);
}

TEST(Sequential, PredictProbaBatchMatchesSingle) {
  const data::Dataset ds = data::make_two_gaussians(40, 3, 2.0, 87);
  Sequential net(fast_config());
  net.fit(ds.feature_matrix(), ds.labels());
  const auto batch = net.predict_proba_batch(ds.feature_matrix());
  ASSERT_EQ(batch.size(), ds.n_rows());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(batch[i], net.predict_proba(ds.row(i)), 1e-12);
  }
}

TEST(Sequential, DeterministicPerSeed) {
  const data::Dataset ds = data::make_two_gaussians(50, 3, 2.0, 88);
  Sequential a(fast_config());
  Sequential b(fast_config());
  a.fit(ds.feature_matrix(), ds.labels());
  b.fit(ds.feature_matrix(), ds.labels());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.predict_proba(ds.row(i)), b.predict_proba(ds.row(i)));
  }
}

TEST(Sequential, TrainingBitIdenticalWithBlockedKernels) {
  // The blocked GEMM preserves the reference kernels' accumulation order, so
  // a full fixed-seed training run — every epoch's loss, and the resulting
  // predictions — is bit-identical with blocking on or off.
  const data::Dataset ds = data::make_two_gaussians(80, 6, 2.0, 91);
  Sequential ref(fast_config());
  Sequential blk(fast_config());
  set_blocked_matmul(false);
  ref.fit(ds.feature_matrix(), ds.labels());
  set_blocked_matmul(true);
  blk.fit(ds.feature_matrix(), ds.labels());
  reset_blocked_matmul();

  const TrainHistory& rh = ref.history();
  const TrainHistory& bh = blk.history();
  ASSERT_EQ(rh.train_loss.size(), bh.train_loss.size());
  ASSERT_EQ(rh.val_loss.size(), bh.val_loss.size());
  for (std::size_t e = 0; e < rh.train_loss.size(); ++e) {
    EXPECT_EQ(rh.train_loss[e], bh.train_loss[e]) << "epoch " << e;
    EXPECT_EQ(rh.val_loss[e], bh.val_loss[e]) << "epoch " << e;
  }
  EXPECT_EQ(rh.best_epoch, bh.best_epoch);
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    EXPECT_EQ(ref.predict_proba(ds.row(i)), blk.predict_proba(ds.row(i)));
  }
}

TEST(Sequential, ParameterCountMatchesArchitecture) {
  SequentialConfig config;
  config.hidden = {32, 32};
  Sequential net(config);
  const data::Dataset ds = data::make_two_gaussians(30, 8, 3.0, 89);
  net.fit(ds.feature_matrix(), ds.labels());
  // 8*32+32 + 32*32+32 + 32*1+1 = 288 + 1056 + 33 = 1377.
  EXPECT_EQ(net.parameter_count(), 1377u);
}

TEST(Sequential, NotFittedThrows) {
  const Sequential net;
  const std::vector<double> x = {0.0};
  EXPECT_THROW((void)net.predict_proba(x), std::logic_error);
}

TEST(Sequential, QueryArityMismatchThrows) {
  const data::Dataset ds = data::make_two_gaussians(30, 3, 3.0, 90);
  Sequential net(fast_config());
  net.fit(ds.feature_matrix(), ds.labels());
  const std::vector<double> bad = {1.0};
  EXPECT_THROW((void)net.predict_proba(bad), std::invalid_argument);
}

TEST(Sequential, RejectsBadConfig) {
  SequentialConfig config;
  config.hidden = {};
  EXPECT_THROW(Sequential{config}, std::invalid_argument);
  config = SequentialConfig{};
  config.max_epochs = 0;
  EXPECT_THROW(Sequential{config}, std::invalid_argument);
  config = SequentialConfig{};
  config.batch_size = 0;
  EXPECT_THROW(Sequential{config}, std::invalid_argument);
}

}  // namespace
}  // namespace hdc::nn
