#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

namespace hdc::parallel {
namespace {

TEST(ThreadPool, HasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(0, kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ParallelForChunks, ChunksCoverRangeWithoutOverlap) {
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_chunks(0, kN, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, SmallRangeRunsInline) {
  // Below the grain the loop runs on the calling thread; behaviour must be
  // identical (all indices visited once).
  std::vector<int> visits(100, 0);
  parallel_for(0, 100, [&](std::size_t i) { ++visits[i]; });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, ResultsMatchSerialReduction) {
  constexpr std::size_t kN = 100000;
  std::vector<double> data(kN);
  for (std::size_t i = 0; i < kN; ++i) data[i] = static_cast<double>(i % 97);
  std::vector<double> squared(kN);
  parallel_for(0, kN, [&](std::size_t i) { squared[i] = data[i] * data[i]; });
  double expected = 0.0;
  double actual = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected += data[i] * data[i];
    actual += squared[i];
  }
  EXPECT_DOUBLE_EQ(expected, actual);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, StatsStartAtZero) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_submitted(), 0u);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, StatsConsistentAfterWaitIdle) {
  ThreadPool pool(3);
  constexpr std::uint64_t kTasks = 500;
  std::atomic<int> counter{0};
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  // After wait_idle() every submitted task has run and the queue is drained.
  EXPECT_EQ(pool.tasks_submitted(), kTasks);
  EXPECT_EQ(pool.tasks_completed(), kTasks);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(counter.load(), static_cast<int>(kTasks));
}

TEST(ThreadPool, StatsAccumulateAcrossBatches) {
  ThreadPool pool(2);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  EXPECT_EQ(pool.tasks_submitted(), 30u);
  EXPECT_EQ(pool.tasks_completed(), 30u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

}  // namespace
}  // namespace hdc::parallel
