#include "parallel/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "parallel/task_graph.hpp"

namespace hdc::parallel {
namespace {

TEST(ThreadPool, HasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ExplicitSizeRespected) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  constexpr std::size_t kN = 10000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for(0, kN, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<std::size_t> sum{0};
  parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ParallelForChunks, ChunksCoverRangeWithoutOverlap) {
  constexpr std::size_t kN = 5000;
  std::vector<std::atomic<int>> visits(kN);
  parallel_for_chunks(0, kN, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) {
      visits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, SmallRangeRunsInline) {
  // Below the grain the loop runs on the calling thread; behaviour must be
  // identical (all indices visited once).
  std::vector<int> visits(100, 0);
  parallel_for(0, 100, [&](std::size_t i) { ++visits[i]; });
  for (const int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelFor, ResultsMatchSerialReduction) {
  constexpr std::size_t kN = 100000;
  std::vector<double> data(kN);
  for (std::size_t i = 0; i < kN; ++i) data[i] = static_cast<double>(i % 97);
  std::vector<double> squared(kN);
  parallel_for(0, kN, [&](std::size_t i) { squared[i] = data[i] * data[i]; });
  double expected = 0.0;
  double actual = 0.0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected += data[i] * data[i];
    actual += squared[i];
  }
  EXPECT_DOUBLE_EQ(expected, actual);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, StatsStartAtZero) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.tasks_submitted(), 0u);
  EXPECT_EQ(pool.tasks_completed(), 0u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, StatsConsistentAfterWaitIdle) {
  ThreadPool pool(3);
  constexpr std::uint64_t kTasks = 500;
  std::atomic<int> counter{0};
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  // After wait_idle() every submitted task has run and the queue is drained.
  EXPECT_EQ(pool.tasks_submitted(), kTasks);
  EXPECT_EQ(pool.tasks_completed(), kTasks);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(counter.load(), static_cast<int>(kTasks));
}

TEST(ThreadPool, StatsAccumulateAcrossBatches) {
  ThreadPool pool(2);
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) pool.submit([] {});
    pool.wait_idle();
  }
  EXPECT_EQ(pool.tasks_submitted(), 30u);
  EXPECT_EQ(pool.tasks_completed(), 30u);
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, CurrentIdentifiesWorkerThread) {
  ThreadPool pool(2);
  EXPECT_EQ(ThreadPool::current(), nullptr);
  std::atomic<ThreadPool*> seen{nullptr};
  pool.submit([&] { seen.store(ThreadPool::current()); });
  pool.wait_idle();
  EXPECT_EQ(seen.load(), &pool);
  EXPECT_EQ(ThreadPool::current(), nullptr);
}

TEST(ThreadPool, WaitIdleInsideWorkerThrows) {
  // A worker blocking on its own pool's wait_idle() would occupy the slot
  // the remaining tasks need; the pool refuses instead of deadlocking.
  // Pool tasks must not throw, so the guard is probed inside a catch.
  ThreadPool pool(2);
  std::atomic<bool> threw{false};
  pool.submit([&] {
    try {
      pool.wait_idle();
    } catch (const std::logic_error&) {
      threw.store(true);
    }
  });
  pool.wait_idle();  // from outside a worker: still fine
  EXPECT_TRUE(threw.load());
}

TEST(ThreadPool, WaitIdleOnOtherPoolFromWorkerIsAllowed) {
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<bool> ok{false};
  outer.submit([&] {
    inner.submit([] {});
    inner.wait_idle();  // different pool: no self-deadlock hazard
    ok.store(true);
  });
  outer.wait_idle();
  EXPECT_TRUE(ok.load());
}

TEST(ParallelFor, InsideWorkerRunsInline) {
  // parallel_for targeting the pool the caller is already a worker of runs
  // the loop inline (it could not wait_idle() on itself). Same results.
  ThreadPool pool(2);
  constexpr std::size_t kN = 4096;  // above the inline grain
  std::vector<std::atomic<int>> visits(kN);
  std::atomic<bool> finished{false};
  pool.submit([&] {
    parallel_for(
        0, kN, [&](std::size_t i) { visits[i].fetch_add(1); }, &pool);
    finished.store(true);
  });
  pool.wait_idle();
  EXPECT_TRUE(finished.load());
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(TaskGraph, EmptyGraphRuns) {
  ThreadPool pool(2);
  TaskGraph graph;
  graph.run(&pool);
  EXPECT_EQ(graph.task_count(), 0u);
  EXPECT_EQ(graph.executed(), 0u);
}

TEST(TaskGraph, ExecutesEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  TaskGraph graph;
  constexpr std::size_t kN = 300;
  std::vector<std::atomic<int>> runs(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    graph.add("test.task", [&runs, i] { runs[i].fetch_add(1); });
  }
  graph.run(&pool);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(runs[i].load(), 1) << i;
  EXPECT_EQ(graph.executed(), kN);
  EXPECT_EQ(graph.task_count(), kN);
}

TEST(TaskGraph, DependencyOrderRespected) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<bool> a_done{false};
  std::atomic<bool> b_done{false};
  std::atomic<bool> order_ok{true};
  const auto a = graph.add("test.a", [&] { a_done.store(true); });
  const auto b = graph.add(
      "test.b",
      [&] {
        if (!a_done.load()) order_ok.store(false);
        b_done.store(true);
      },
      {a});
  const auto c = graph.add(
      "test.c",
      [&] {
        if (!a_done.load() || !b_done.load()) order_ok.store(false);
      },
      {a, b});
  graph.run(&pool);
  EXPECT_TRUE(order_ok.load());
  EXPECT_TRUE(graph.done(a));
  EXPECT_TRUE(graph.done(b));
  EXPECT_TRUE(graph.done(c));
}

TEST(TaskGraph, DiamondJoinSeesBothBranches) {
  ThreadPool pool(4);
  TaskGraph graph;
  std::atomic<int> left{0};
  std::atomic<int> right{0};
  std::atomic<int> joined{-1};
  const auto top = graph.add("test.top", [] {});
  const auto l = graph.add("test.left", [&] { left.store(3); }, {top});
  const auto r = graph.add("test.right", [&] { right.store(4); }, {top});
  graph.add("test.join", [&] { joined.store(left.load() + right.load()); },
            {l, r});
  graph.run(&pool);
  EXPECT_EQ(joined.load(), 7);
}

TEST(TaskGraph, FanOutFanIn) {
  ThreadPool pool(4);
  TaskGraph graph;
  constexpr std::size_t kWidth = 64;
  std::vector<double> cell(kWidth, 0.0);
  std::vector<TaskGraph::TaskId> ids;
  for (std::size_t i = 0; i < kWidth; ++i) {
    ids.push_back(graph.add("test.cell", [&cell, i] {
      cell[i] = static_cast<double>(i) * 0.5;
    }));
  }
  double total = -1.0;
  graph.add(
      "test.reduce",
      [&] { total = std::accumulate(cell.begin(), cell.end(), 0.0); },
      std::span<const TaskGraph::TaskId>(ids));
  graph.run(&pool);
  EXPECT_DOUBLE_EQ(total, 0.5 * (kWidth - 1) * kWidth / 2.0);
}

TEST(TaskGraph, SingleWorkerPoolRunsWholeGraphOnCaller) {
  ThreadPool pool(1);
  TaskGraph graph;
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> all_on_caller{true};
  for (int i = 0; i < 50; ++i) {
    graph.add("test.task", [&] {
      if (std::this_thread::get_id() != caller) all_on_caller.store(false);
    });
  }
  graph.run(&pool);
  EXPECT_TRUE(all_on_caller.load());
  EXPECT_EQ(graph.executed(), 50u);
  EXPECT_EQ(graph.steals(), 0u);  // nothing to steal from
}

TEST(TaskGraph, AddAndCooperativeWaitInsideTask) {
  // A running task may submit follow-up work and wait on it; the waiting
  // worker executes pending tasks instead of sleeping, so even a
  // single-worker pool cannot deadlock.
  ThreadPool pool(1);
  TaskGraph graph;
  std::atomic<int> value{0};
  graph.add("test.outer", [&] {
    const auto inner = graph.add("test.inner", [&] { value.store(41); });
    graph.wait(inner);
    value.fetch_add(1);
  });
  graph.run(&pool);
  EXPECT_EQ(value.load(), 42);
  EXPECT_EQ(graph.executed(), 2u);
}

TEST(TaskGraph, NestedAddChainCompletes) {
  ThreadPool pool(2);
  TaskGraph graph;
  std::atomic<int> depth{0};
  std::function<void()> spawn = [&] {
    if (depth.fetch_add(1) < 9) graph.add("test.chain", spawn);
  };
  graph.add("test.chain", spawn);
  graph.run(&pool);  // run() blocks until tasks added mid-run finish too
  EXPECT_EQ(depth.load(), 10);
  EXPECT_EQ(graph.executed(), 10u);
}

TEST(TaskGraph, StealsUnderContention) {
  // Seeding is round-robin, so with 2 workers the even-indexed tasks land on
  // worker 0 (the caller). The last-added even task sleeps; own-deque pops
  // are LIFO, so the caller picks it up first and worker 1 — after draining
  // its own odd-indexed tasks — must steal the caller's remaining ones.
  ThreadPool pool(2);
  TaskGraph graph;
  std::atomic<int> count{0};
  constexpr int kFast = 200;
  for (int i = 0; i < kFast; ++i) {
    graph.add("test.fast", [&] { count.fetch_add(1); });
  }
  graph.add("test.slow", [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    count.fetch_add(1);
  });
  graph.run(&pool);
  EXPECT_EQ(count.load(), kFast + 1);
  EXPECT_EQ(graph.executed(), static_cast<std::uint64_t>(kFast) + 1);
  EXPECT_GT(graph.steals(), 0u);
  EXPECT_LE(graph.steals(), graph.executed());
}

TEST(TaskGraph, ResultsIndependentOfWorkerCount) {
  const auto compute = [](std::size_t workers) {
    ThreadPool pool(workers);
    TaskGraph graph;
    constexpr std::size_t kCells = 12;
    std::vector<double> cell(kCells, 0.0);
    std::vector<TaskGraph::TaskId> ids;
    for (std::size_t i = 0; i < kCells; ++i) {
      ids.push_back(graph.add("test.cell", [&cell, i] {
        double v = static_cast<double>(i + 1);
        for (int r = 0; r < 2000; ++r) v = v * 1.0000001 + 0.03125;
        cell[i] = v;
      }));
    }
    double total = 0.0;
    graph.add(
        "test.reduce",
        [&] {
          for (const double v : cell) total += v;  // fixed fold order
        },
        std::span<const TaskGraph::TaskId>(ids));
    graph.run(&pool);
    return total;
  };
  const double serial = compute(1);
  EXPECT_EQ(serial, compute(2));  // bit-identical, not just close
  EXPECT_EQ(serial, compute(4));
}

TEST(TaskGraph, RunTwiceWithFreshTasks) {
  ThreadPool pool(2);
  TaskGraph graph;
  std::atomic<int> count{0};
  graph.add("test.first", [&] { count.fetch_add(1); });
  graph.run(&pool);
  EXPECT_EQ(count.load(), 1);
  graph.add("test.second", [&] { count.fetch_add(1); });
  graph.run(&pool);
  EXPECT_EQ(count.load(), 2);
  EXPECT_EQ(graph.executed(), 2u);
}

}  // namespace
}  // namespace hdc::parallel
