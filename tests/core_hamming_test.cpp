#include "core/hamming_classifier.hpp"

#include <gtest/gtest.h>

#include "core/extractor.hpp"
#include "data/synthetic.hpp"
#include "util/rng.hpp"

namespace hdc::core {
namespace {

// Two clusters of noisy copies of anchor vectors.
struct Clustered {
  std::vector<hv::BitVector> vectors;
  std::vector<int> labels;
};

Clustered make_clusters(std::size_t per_class, std::size_t dim, std::size_t noise_bits,
                        std::uint64_t seed) {
  util::Rng rng(seed);
  const hv::BitVector anchor0 = hv::BitVector::random_balanced(dim, rng);
  const hv::BitVector anchor1 = hv::BitVector::random_balanced(dim, rng);
  Clustered out;
  for (std::size_t i = 0; i < per_class; ++i) {
    out.vectors.push_back(anchor0.with_flipped(noise_bits, noise_bits, rng));
    out.labels.push_back(0);
    out.vectors.push_back(anchor1.with_flipped(noise_bits, noise_bits, rng));
    out.labels.push_back(1);
  }
  return out;
}

TEST(HammingClassifier, NearestNeighborOnCleanClusters) {
  const Clustered c = make_clusters(10, 2000, 50, 1);
  HammingClassifier model;
  model.fit(c.vectors, c.labels);
  util::Rng rng(2);
  // A fresh noisy copy of anchor 0 classifies as 0.
  const hv::BitVector query = c.vectors[0].with_flipped(30, 30, rng);
  EXPECT_EQ(model.predict(query), 0);
}

TEST(HammingClassifier, ScoreIsBinaryForNearestNeighbor) {
  const Clustered c = make_clusters(5, 1000, 20, 3);
  HammingClassifier model;
  model.fit(c.vectors, c.labels);
  const double s = model.predict_score(c.vectors[1]);
  EXPECT_TRUE(s == 0.0 || s == 1.0);
}

TEST(HammingClassifier, ExactMatchWinsOverOtherClass) {
  const Clustered c = make_clusters(8, 1000, 100, 4);
  HammingClassifier model;
  model.fit(c.vectors, c.labels);
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    EXPECT_EQ(model.predict(c.vectors[i]), c.labels[i]);  // dist 0 to itself
  }
}

TEST(HammingClassifier, PrototypeModeBuildsClassBundles) {
  const Clustered c = make_clusters(15, 2000, 100, 5);
  HammingClassifier model(HammingMode::kPrototype);
  model.fit(c.vectors, c.labels);
  // Prototypes are close to their anchors: classify all training points.
  std::size_t hits = 0;
  for (std::size_t i = 0; i < c.vectors.size(); ++i) {
    if (model.predict(c.vectors[i]) == c.labels[i]) ++hits;
  }
  EXPECT_EQ(hits, c.vectors.size());
  EXPECT_EQ(model.prototype(0).size(), 2000u);
}

TEST(HammingClassifier, PrototypeNeedsBothClasses) {
  HammingClassifier model(HammingMode::kPrototype);
  util::Rng rng(6);
  std::vector<hv::BitVector> vectors = {hv::BitVector::random(100, rng),
                                        hv::BitVector::random(100, rng)};
  std::vector<int> labels = {1, 1};
  EXPECT_THROW(model.fit(std::move(vectors), std::move(labels)),
               std::invalid_argument);
}

TEST(HammingClassifier, PrototypeAccessRequiresMode) {
  const Clustered c = make_clusters(3, 500, 10, 7);
  HammingClassifier model;  // nearest-neighbour mode
  model.fit(c.vectors, c.labels);
  EXPECT_THROW((void)model.prototype(0), std::logic_error);
}

TEST(HammingClassifier, RejectsBadInput) {
  HammingClassifier model;
  EXPECT_THROW(model.fit({}, {}), std::invalid_argument);
  util::Rng rng(8);
  std::vector<hv::BitVector> vectors = {hv::BitVector::random(100, rng)};
  std::vector<int> labels = {2};
  EXPECT_THROW(model.fit(std::move(vectors), std::move(labels)),
               std::invalid_argument);
}

TEST(HammingClassifier, UnfittedThrows) {
  const HammingClassifier model;
  EXPECT_THROW((void)model.predict_score(hv::BitVector(10)), std::logic_error);
}

TEST(HammingLoo, PerfectOnWellSeparatedClusters) {
  const Clustered c = make_clusters(12, 2000, 80, 9);
  const auto predictions = hamming_loo_predictions(c.vectors, c.labels);
  ASSERT_EQ(predictions.size(), c.vectors.size());
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    EXPECT_EQ(predictions[i], c.labels[i]);
  }
}

TEST(HammingLoo, MetricsOnPerfectClustersAreAllOne) {
  const Clustered c = make_clusters(10, 1000, 30, 10);
  const eval::BinaryMetrics m = hamming_loo_metrics(c.vectors, c.labels);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
}

TEST(HammingLoo, DoesNotUseSelfMatch) {
  // Two vectors per class, each class pair identical: removing self still
  // leaves the twin, so predictions stay correct. With unique vectors per
  // class + adversarial placement, self-exclusion forces errors.
  util::Rng rng(11);
  const hv::BitVector a = hv::BitVector::random_balanced(1000, rng);
  hv::BitVector b = a;
  b.invert();  // far from a
  // One lone positive close to the negative cluster: its nearest *other*
  // vector is negative, so LOO must misclassify it.
  const std::vector<hv::BitVector> vectors = {a, a.with_flipped(5, 5, rng), b};
  const std::vector<int> labels = {0, 0, 1};
  const auto predictions = hamming_loo_predictions(vectors, labels);
  EXPECT_EQ(predictions[2], 0);  // forced error proves no self-match
  EXPECT_EQ(predictions[0], 0);
  EXPECT_EQ(predictions[1], 0);
}

TEST(HammingLoo, RequiresAtLeastTwoVectors) {
  util::Rng rng(12);
  const std::vector<hv::BitVector> one = {hv::BitVector::random(100, rng)};
  const std::vector<int> labels = {0};
  EXPECT_THROW((void)hamming_loo_predictions(one, labels), std::invalid_argument);
}

TEST(HammingClassifier, KnnVoteFractionScore) {
  // 3-NN: the score is the positive fraction of the three nearest vectors.
  util::Rng rng(20);
  const hv::BitVector anchor = hv::BitVector::random_balanced(1000, rng);
  std::vector<hv::BitVector> vectors = {
      anchor.with_flipped(5, 5, rng),    // pos, very close
      anchor.with_flipped(10, 10, rng),  // neg, close
      anchor.with_flipped(15, 15, rng),  // pos, close
      anchor.with_flipped(200, 200, rng) // neg, far (outside the 3-NN set)
  };
  std::vector<int> labels = {1, 0, 1, 0};
  HammingClassifier model(HammingMode::kNearestNeighbor, 3);
  model.fit(std::move(vectors), std::move(labels));
  EXPECT_NEAR(model.predict_score(anchor), 2.0 / 3.0, 1e-12);
  EXPECT_EQ(model.predict(anchor), 1);
}

TEST(HammingClassifier, KnnClampsToTrainingSize) {
  util::Rng rng(21);
  std::vector<hv::BitVector> vectors = {hv::BitVector::random(100, rng),
                                        hv::BitVector::random(100, rng)};
  std::vector<int> labels = {1, 0};
  HammingClassifier model(HammingMode::kNearestNeighbor, 10);
  model.fit(std::move(vectors), std::move(labels));
  EXPECT_NEAR(model.predict_score(hv::BitVector(100)), 0.5, 1e-12);
}

TEST(HammingClassifier, ZeroKRejected) {
  EXPECT_THROW(HammingClassifier(HammingMode::kNearestNeighbor, 0),
               std::invalid_argument);
}

TEST(HammingLoo, EndToEndOnSylhetBeatsChance) {
  const data::Dataset ds = data::make_sylhet({60, 90, 13});
  ExtractorConfig config;
  config.dimensions = 2000;
  HdcFeatureExtractor extractor(config);
  extractor.fit(ds);
  const eval::BinaryMetrics m = hamming_loo_metrics(extractor.transform(ds),
                                                    ds.labels());
  // At this reduced size (150 rows) and dimensionality the 1-NN model is
  // noticeably below the paper's full-size ~0.96 but must beat chance (0.6
  // majority) clearly. The full-size number is checked by bench/table2.
  EXPECT_GT(m.accuracy, 0.7);
}

}  // namespace
}  // namespace hdc::core
