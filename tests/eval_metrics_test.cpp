#include "eval/metrics.hpp"

#include <gtest/gtest.h>

namespace hdc::eval {
namespace {

TEST(ConfusionMatrix, TalliesAllFourCells) {
  const std::vector<int> y_true = {1, 1, 0, 0, 1, 0};
  const std::vector<int> y_pred = {1, 0, 0, 1, 1, 0};
  const ConfusionMatrix cm = confusion_matrix(y_true, y_pred);
  EXPECT_EQ(cm.tp, 2u);
  EXPECT_EQ(cm.fn, 1u);
  EXPECT_EQ(cm.tn, 2u);
  EXPECT_EQ(cm.fp, 1u);
  EXPECT_EQ(cm.total(), 6u);
}

TEST(ConfusionMatrix, SizeMismatchThrows) {
  EXPECT_THROW((void)confusion_matrix({1}, {1, 0}), std::invalid_argument);
}

TEST(ConfusionMatrix, BadLabelsThrow) {
  EXPECT_THROW((void)confusion_matrix({2}, {1}), std::invalid_argument);
  EXPECT_THROW((void)confusion_matrix({1}, {-1}), std::invalid_argument);
}

TEST(Metrics, PerfectPrediction) {
  const std::vector<int> y = {1, 0, 1, 0};
  const BinaryMetrics m = compute_metrics(y, y);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(Metrics, KnownValues) {
  ConfusionMatrix cm;
  cm.tp = 40;
  cm.fn = 10;
  cm.tn = 30;
  cm.fp = 20;
  const BinaryMetrics m = metrics_from_confusion(cm);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.7);
  EXPECT_DOUBLE_EQ(m.precision, 40.0 / 60.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.8);
  EXPECT_DOUBLE_EQ(m.specificity, 0.6);
  const double p = 40.0 / 60.0;
  EXPECT_DOUBLE_EQ(m.f1, 2.0 * p * 0.8 / (p + 0.8));
}

TEST(Metrics, DegenerateZeroDenominators) {
  ConfusionMatrix cm;  // all zeros
  const BinaryMetrics m = metrics_from_confusion(cm);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.0);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.f1, 0.0);
}

TEST(Metrics, AllNegativePredictionsHaveZeroPrecision) {
  const std::vector<int> y_true = {1, 1, 0};
  const std::vector<int> y_pred = {0, 0, 0};
  const BinaryMetrics m = compute_metrics(y_true, y_pred);
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
  EXPECT_DOUBLE_EQ(m.specificity, 1.0);
}

TEST(Metrics, AccuracyIdentity) {
  // accuracy == (tp + tn) / total for any confusion matrix.
  for (std::size_t tp : {0u, 3u}) {
    for (std::size_t tn : {1u, 4u}) {
      for (std::size_t fp : {0u, 2u}) {
        for (std::size_t fn : {1u, 5u}) {
          ConfusionMatrix cm{tp, tn, fp, fn};
          const BinaryMetrics m = metrics_from_confusion(cm);
          EXPECT_DOUBLE_EQ(m.accuracy,
                           static_cast<double>(tp + tn) /
                               static_cast<double>(tp + tn + fp + fn));
        }
      }
    }
  }
}

TEST(Accuracy, FractionOfMatches) {
  EXPECT_DOUBLE_EQ(accuracy({1, 0, 1, 0}, {1, 1, 1, 0}), 0.75);
  EXPECT_DOUBLE_EQ(accuracy({}, {}), 0.0);
}

TEST(Accuracy, SizeMismatchThrows) {
  EXPECT_THROW((void)accuracy({1}, {1, 0}), std::invalid_argument);
}

TEST(RocAuc, PerfectRankingIsOne) {
  const std::vector<int> y = {0, 0, 1, 1};
  const std::vector<double> s = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(roc_auc(y, s), 1.0);
}

TEST(RocAuc, ReversedRankingIsZero) {
  const std::vector<int> y = {0, 0, 1, 1};
  const std::vector<double> s = {0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(y, s), 0.0);
}

TEST(RocAuc, ConstantScoresAreHalf) {
  const std::vector<int> y = {0, 1, 0, 1};
  const std::vector<double> s = {0.5, 0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(roc_auc(y, s), 0.5);
}

TEST(RocAuc, KnownMixedCase) {
  // Positives at scores {0.9, 0.4}; negatives at {0.6, 0.1}.
  // Pairs: (0.9 beats both) + (0.4 beats 0.1 only) = 3 of 4.
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<double> s = {0.9, 0.6, 0.4, 0.1};
  EXPECT_DOUBLE_EQ(roc_auc(y, s), 0.75);
}

TEST(RocAuc, SingleClassReturnsHalf) {
  const std::vector<int> y = {1, 1};
  const std::vector<double> s = {0.3, 0.7};
  EXPECT_DOUBLE_EQ(roc_auc(y, s), 0.5);
}

TEST(RocAuc, SizeMismatchThrows) {
  EXPECT_THROW((void)roc_auc({1}, {0.5, 0.5}), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::eval
