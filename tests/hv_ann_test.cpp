// Property tests for the hv::ann coarse-filter / exact-rerank index: the
// exact-fallback byte-identity contract, full-probe equality with the exact
// kernels, seeded rebuild bit-identity, serde round-trips, corruption
// rejection, fingerprint checks, and concurrent const queries (the ctest
// `ann` label is part of the TSan set).
#include "hv/ann.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

#include "hv/bit_matrix.hpp"
#include "hv/bitvector.hpp"
#include "hv/search.hpp"
#include "hv/sharded_bits.hpp"
#include "simd/dispatch.hpp"
#include "util/rng.hpp"

namespace {

using hdc::hv::BitVector;
using hdc::hv::Neighbor;
using hdc::hv::PackedHVs;
namespace ann = hdc::hv::ann;

PackedHVs random_rows(std::size_t rows, std::size_t bits, std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  std::vector<BitVector> vectors;
  vectors.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    vectors.push_back(BitVector::random(bits, rng));
  }
  return PackedHVs::pack(vectors);
}

/// Clustered cohort: `centers` random prototypes, each row a center with a
/// small fraction of bits flipped. Nearest neighbours are same-cluster, which
/// is the structure encoded patient vectors actually have.
PackedHVs clustered_rows(std::size_t rows, std::size_t bits,
                         std::size_t centers, double flip,
                         std::uint64_t seed) {
  hdc::util::Rng rng(seed);
  std::vector<BitVector> prototypes;
  prototypes.reserve(centers);
  for (std::size_t c = 0; c < centers; ++c) {
    prototypes.push_back(BitVector::random(bits, rng));
  }
  std::vector<BitVector> vectors;
  vectors.reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    BitVector v = prototypes[i % centers];
    for (std::size_t b = 0; b < bits; ++b) {
      if (rng.bernoulli(flip)) v.set(b, !v.get(b));
    }
    vectors.push_back(std::move(v));
  }
  return PackedHVs::pack(vectors);
}

std::string serialized(const ann::Index& index) {
  std::ostringstream out;
  index.save(out);
  return out.str();
}

/// Split a packed database into <= shard_rows row shards, the input shape
/// build_sharded consumes.
hdc::hv::ShardedBitMatrix shard_packed(const PackedHVs& db,
                                       std::size_t shard_rows) {
  hdc::hv::ShardedBitMatrix out;
  for (std::size_t b = 0; b < db.rows(); b += shard_rows) {
    const std::size_t e = std::min(db.rows(), b + shard_rows);
    PackedHVs slice(db.bits(), e - b);
    for (std::size_t i = b; i < e; ++i) {
      std::copy_n(db.row(i), db.words_per_row(), slice.row(i - b));
    }
    out.append_shard(hdc::hv::BitMatrix::from_rows(std::move(slice)));
  }
  return out;
}

TEST(HvAnnTest, ExactFallbackIsByteIdenticalToKernels) {
  const PackedHVs db = random_rows(200, 512, 1);
  const PackedHVs queries = random_rows(33, 512, 2);
  const ann::Index index = ann::Index::build(db);

  ann::SearchOptions options;
  options.exact = true;
  const std::vector<Neighbor> got = index.nearest(queries, db, options);
  const std::vector<Neighbor> want = hdc::hv::nearest_neighbors(queries, db);
  EXPECT_EQ(got, want);

  const auto got_k = index.top_k(queries, db, 5, options);
  const auto want_k = hdc::hv::top_k_neighbors(queries, db, 5);
  EXPECT_EQ(got_k, want_k);
}

TEST(HvAnnTest, FullProbeFullRerankMatchesExact) {
  const PackedHVs db = random_rows(300, 256, 3);
  const PackedHVs queries = random_rows(40, 256, 4);
  ann::Config config;
  config.rerank_fraction = 1.0;
  const ann::Index index = ann::Index::build(db, config);

  ann::SearchOptions options;
  options.nprobe = index.cells();  // visit everything
  const std::vector<Neighbor> got = index.nearest(queries, db, options);
  const std::vector<Neighbor> want = hdc::hv::nearest_neighbors(queries, db);
  EXPECT_EQ(got, want);

  const auto got_k = index.top_k(queries, db, 7, options);
  const auto want_k = hdc::hv::top_k_neighbors(queries, db, 7);
  EXPECT_EQ(got_k, want_k);
}

TEST(HvAnnTest, FullProbeLeaveOneOutMatchesExact) {
  const PackedHVs db = random_rows(150, 256, 5);
  ann::Config config;
  config.rerank_fraction = 1.0;
  const ann::Index index = ann::Index::build(db, config);

  ann::SearchOptions options;
  options.nprobe = index.cells();
  options.exclude_same_index = true;
  const std::vector<Neighbor> got = index.nearest(db, db, options);

  hdc::hv::SearchOptions exact_options;
  exact_options.exclude_same_index = true;
  const std::vector<Neighbor> want =
      hdc::hv::nearest_neighbors(db, db, exact_options);
  EXPECT_EQ(got, want);
}

TEST(HvAnnTest, ResultsAreSubsetOfRowsWithExactDistances) {
  const PackedHVs db = clustered_rows(400, 512, 16, 0.05, 6);
  const PackedHVs queries = clustered_rows(25, 512, 16, 0.08, 7);
  const ann::Index index = ann::Index::build(db);

  const auto lists = index.top_k(queries, db, 4);
  const auto hamming = hdc::simd::active().hamming;
  ASSERT_EQ(lists.size(), queries.rows());
  for (std::size_t q = 0; q < lists.size(); ++q) {
    ASSERT_FALSE(lists[q].empty());
    for (std::size_t i = 0; i < lists[q].size(); ++i) {
      const Neighbor& n = lists[q][i];
      ASSERT_LT(n.index, db.rows());
      // Every returned distance is exact (rerank stage), never estimated.
      EXPECT_EQ(n.distance, hamming(queries.row(q), db.row(n.index),
                                    db.words_per_row()));
      if (i > 0) {
        const Neighbor& prev = lists[q][i - 1];
        EXPECT_TRUE(prev.distance < n.distance ||
                    (prev.distance == n.distance && prev.index < n.index));
      }
    }
  }
}

TEST(HvAnnTest, HighRecallOnClusteredData) {
  const PackedHVs db = clustered_rows(2000, 1024, 32, 0.05, 8);
  const ann::Index index = ann::Index::build(db);

  ann::SearchOptions options;
  options.exclude_same_index = true;
  ann::SearchStats stats;
  const std::vector<Neighbor> got = index.nearest(db, db, options, &stats);

  hdc::hv::SearchOptions exact_options;
  exact_options.exclude_same_index = true;
  const std::vector<Neighbor> want =
      hdc::hv::nearest_neighbors(db, db, exact_options);

  std::size_t hits = 0;
  for (std::size_t q = 0; q < got.size(); ++q) {
    // Tie-tolerant recall: a hit is any neighbour at the true best distance.
    if (got[q].distance == want[q].distance) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(got.size()), 0.99);
  EXPECT_EQ(stats.queries, db.rows());
  EXPECT_GT(stats.candidates, 0u);
  // The point of the index: visit far fewer full-width words than the exact
  // O(n) sweep (n * words per query).
  const std::uint64_t exact_word_ops =
      static_cast<std::uint64_t>(db.rows()) * db.rows() * db.words_per_row();
  EXPECT_LT(stats.word_ops, exact_word_ops / 2);
}

TEST(HvAnnTest, SeededRebuildIsBitIdentical) {
  const PackedHVs db = clustered_rows(500, 512, 10, 0.06, 9);
  const ann::Index a = ann::Index::build(db);
  const ann::Index b = ann::Index::build(db);
  EXPECT_EQ(a, b);
  EXPECT_EQ(serialized(a), serialized(b));

  ann::Config other;
  other.seed = 99;
  const ann::Index c = ann::Index::build(db, other);
  EXPECT_NE(serialized(a), serialized(c));
}

// The PR 9 invariance contract extended to the ANN builder: a streamed
// build must be byte-identical (serialized form) to the in-memory build at
// any shard geometry, including a ragged final shard.
TEST(HvAnnTest, ShardedBuildIsByteIdenticalAcrossShardCounts) {
  const PackedHVs db = clustered_rows(500, 512, 10, 0.06, 21);
  const ann::Index reference = ann::Index::build(db);
  const std::string reference_bytes = serialized(reference);

  for (const std::size_t shard_rows : {500u, 125u, 65u}) {
    const hdc::hv::ShardedBitMatrix sharded = shard_packed(db, shard_rows);
    const hdc::hv::ShardedBitMatrixSource source(sharded);
    ann::BuildStats stats;
    const ann::Index streamed =
        ann::Index::build_sharded(source, {}, nullptr, &stats);
    EXPECT_EQ(streamed, reference) << "shard_rows=" << shard_rows;
    EXPECT_EQ(serialized(streamed), reference_bytes)
        << "shard_rows=" << shard_rows;
    EXPECT_NO_THROW(streamed.check_database(db));
    EXPECT_EQ(stats.shards, sharded.num_shards());
    EXPECT_EQ(stats.index_bytes, streamed.storage_bytes());
    EXPECT_GE(stats.bytes_peak, stats.shard_bytes_max);
    EXPECT_GT(stats.shard_bytes_max, 0u);
  }
}

TEST(HvAnnTest, ShardedBuildStatsReportedForInMemoryBuildToo) {
  const PackedHVs db = random_rows(200, 256, 77);
  ann::BuildStats stats;
  const ann::Index index = ann::Index::build(db, {}, nullptr, &stats);
  EXPECT_EQ(stats.shards, 1u);
  // The single "shard" is the whole resident database.
  EXPECT_EQ(stats.shard_bytes_max,
            db.rows() * db.words_per_row() * sizeof(std::uint64_t));
  EXPECT_GE(stats.bytes_peak, stats.shard_bytes_max);
  EXPECT_EQ(stats.index_bytes, index.storage_bytes());
}

TEST(HvAnnTest, ShardedBuildRejectsEmptySource) {
  const hdc::hv::ShardedBitMatrix empty;
  const hdc::hv::ShardedBitMatrixSource source(empty);
  EXPECT_THROW((void)ann::Index::build_sharded(source),
               std::invalid_argument);
}

// One batched sketch_scan call per probed cell: the stat is exactly the
// probe count, and recording it never changes results.
TEST(HvAnnTest, SketchBlocksStatCountsProbedCells) {
  const PackedHVs db = clustered_rows(400, 256, 8, 0.05, 31);
  const PackedHVs queries = clustered_rows(25, 256, 8, 0.05, 32);
  const ann::Index index = ann::Index::build(db);
  ann::SearchStats stats;
  (void)index.nearest(queries, db, {}, &stats);
  EXPECT_EQ(stats.sketch_blocks, stats.probes);
  EXPECT_GT(stats.sketch_blocks, 0u);
}

TEST(HvAnnTest, ResolvedConfigIsPersistedAndNeverZero) {
  const PackedHVs db = random_rows(100, 256, 10);
  const ann::Index index = ann::Index::build(db);
  EXPECT_GT(index.config().cells, 0u);
  EXPECT_GT(index.config().nprobe, 0u);
  EXPECT_LE(index.config().nprobe, index.cells());
  EXPECT_EQ(index.cells(), index.config().cells);
}

TEST(HvAnnTest, SaveLoadRoundTripIsByteIdentical) {
  const PackedHVs db = clustered_rows(300, 512, 8, 0.05, 11);
  const ann::Index index = ann::Index::build(db);
  const std::string bytes = serialized(index);

  std::istringstream in(bytes);
  const ann::Index loaded = ann::Index::load(in);
  EXPECT_EQ(loaded, index);
  EXPECT_EQ(serialized(loaded), bytes);

  // A loaded index answers queries identically to the freshly built one.
  const PackedHVs queries = random_rows(10, 512, 12);
  EXPECT_EQ(loaded.nearest(queries, db), index.nearest(queries, db));
  loaded.check_database(db);  // fingerprint survives the round-trip
}

TEST(HvAnnTest, LoadRejectsCorruptedStreams) {
  const PackedHVs db = random_rows(120, 256, 13);
  const ann::Index index = ann::Index::build(db);
  const std::string bytes = serialized(index);

  // Token-level fuzz: flip one character at a stride of positions.
  std::size_t rejected = 0;
  std::size_t mutations = 0;
  for (std::size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string bad = bytes;
    bad[pos] = bad[pos] == 'z' ? 'y' : 'z';
    if (bad == bytes) continue;
    ++mutations;
    std::istringstream in(bad);
    try {
      const ann::Index loaded = ann::Index::load(in);
      // A mutation inside a hex word can survive parsing; it must then be
      // caught by the fingerprint check against the real database.
      try {
        loaded.check_database(db);
      } catch (const std::invalid_argument&) {
        ++rejected;
      }
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  ASSERT_GT(mutations, 0u);
  // Structural tokens dominate the stream; the vast majority of single-char
  // flips must be rejected outright.
  EXPECT_GE(rejected, mutations * 9 / 10);

  // Truncations never parse (the last bytes are a hex word + newline, so
  // cutting 4 bytes in always splits a token).
  for (const std::size_t keep : {0UL, 5UL, bytes.size() / 2, bytes.size() - 4}) {
    std::istringstream in(bytes.substr(0, keep));
    EXPECT_THROW((void)ann::Index::load(in), std::runtime_error) << keep;
  }
}

TEST(HvAnnTest, CheckDatabaseRejectsMismatch) {
  const PackedHVs db = random_rows(80, 256, 14);
  const PackedHVs other = random_rows(80, 256, 15);
  const PackedHVs smaller = random_rows(40, 256, 14);
  const ann::Index index = ann::Index::build(db);
  EXPECT_NO_THROW(index.check_database(db));
  EXPECT_THROW(index.check_database(other), std::invalid_argument);
  EXPECT_THROW(index.check_database(smaller), std::invalid_argument);
  EXPECT_THROW((void)index.nearest(random_rows(3, 128, 16), db),
               std::invalid_argument);
}

TEST(HvAnnTest, BuildRejectsBadInputs) {
  EXPECT_THROW((void)ann::Index::build(PackedHVs()), std::invalid_argument);
  const PackedHVs db = random_rows(10, 128, 17);
  ann::Config bad;
  bad.rerank_fraction = 1.5;
  EXPECT_THROW((void)ann::Index::build(db, bad), std::invalid_argument);
  bad = {};
  bad.sketch_bits = 0;
  EXPECT_THROW((void)ann::Index::build(db, bad), std::invalid_argument);
  const ann::Index empty;
  EXPECT_THROW((void)empty.nearest(db, db), std::logic_error);
}

TEST(HvAnnTest, ConcurrentQueriesAreRaceFreeAndIdentical) {
  const PackedHVs db = clustered_rows(600, 512, 12, 0.05, 18);
  const PackedHVs queries = clustered_rows(50, 512, 12, 0.08, 19);
  const ann::Index index = ann::Index::build(db);
  const std::vector<Neighbor> reference = index.nearest(queries, db);

  constexpr int kThreads = 4;
  std::vector<std::vector<Neighbor>> results(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] { results[t] = index.nearest(queries, db); });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (const auto& result : results) EXPECT_EQ(result, reference);
}

}  // namespace
