#include "eval/curves.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.hpp"

namespace hdc::eval {
namespace {

TEST(RocCurve, PerfectSeparationHitsCorner) {
  const std::vector<int> y = {0, 0, 1, 1};
  const std::vector<double> s = {0.1, 0.2, 0.8, 0.9};
  const auto curve = roc_curve(y, s);
  // Some point must reach TPR 1 with FPR 0.
  bool corner = false;
  for (const RocPoint& p : curve) {
    if (p.tpr == 1.0 && p.fpr == 0.0) corner = true;
  }
  EXPECT_TRUE(corner);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
}

TEST(RocCurve, MonotoneNonDecreasing) {
  const std::vector<int> y = {1, 0, 1, 0, 1, 0, 0, 1};
  const std::vector<double> s = {0.9, 0.8, 0.7, 0.6, 0.55, 0.4, 0.3, 0.2};
  const auto curve = roc_curve(y, s);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
  }
}

TEST(RocCurve, TrapezoidAreaMatchesRocAuc) {
  const std::vector<int> y = {1, 0, 1, 0, 1, 0, 0, 1, 1, 0};
  const std::vector<double> s = {0.9, 0.8, 0.7, 0.6, 0.55, 0.4, 0.3, 0.2, 0.85, 0.35};
  const auto curve = roc_curve(y, s);
  double area = 0.0;
  for (std::size_t i = 1; i < curve.size(); ++i) {
    area += 0.5 * (curve[i].tpr + curve[i - 1].tpr) *
            (curve[i].fpr - curve[i - 1].fpr);
  }
  EXPECT_NEAR(area, roc_auc(y, s), 1e-12);
}

TEST(RocCurve, TiedScoresShareOnePoint) {
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<double> s = {0.5, 0.5, 0.5, 0.5};
  const auto curve = roc_curve(y, s);
  ASSERT_EQ(curve.size(), 2u);  // the anchor + one point at (1,1)
}

TEST(RocCurve, RejectsDegenerateInput) {
  EXPECT_THROW((void)roc_curve({1, 1}, {0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW((void)roc_curve({1}, {0.5, 0.6}), std::invalid_argument);
  EXPECT_THROW((void)roc_curve({}, {}), std::invalid_argument);
}

TEST(PrCurve, EndsAtFullRecall) {
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<double> s = {0.9, 0.8, 0.4, 0.1};
  const auto curve = pr_curve(y, s);
  EXPECT_DOUBLE_EQ(curve.back().recall, 1.0);
  // First point: highest-score sample is positive -> precision 1.
  EXPECT_DOUBLE_EQ(curve.front().precision, 1.0);
}

TEST(PrCurve, PrecisionMatchesHandComputation) {
  // scores sorted: pos(0.9), neg(0.8), pos(0.4), neg(0.1)
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<double> s = {0.9, 0.8, 0.4, 0.1};
  const auto curve = pr_curve(y, s);
  ASSERT_EQ(curve.size(), 4u);
  EXPECT_DOUBLE_EQ(curve[1].precision, 0.5);       // 1 TP / 2 predicted
  EXPECT_DOUBLE_EQ(curve[2].precision, 2.0 / 3.0); // 2 TP / 3 predicted
  EXPECT_DOUBLE_EQ(curve[2].recall, 1.0);
}

TEST(AveragePrecision, PerfectRankingIsOne) {
  const std::vector<int> y = {0, 1, 0, 1};
  const std::vector<double> s = {0.1, 0.9, 0.2, 0.8};
  EXPECT_DOUBLE_EQ(average_precision(y, s), 1.0);
}

TEST(AveragePrecision, KnownMixedCase) {
  // Ranking: pos, neg, pos, neg -> AP = 1/2 * (1 + 2/3) = 0.8333...
  const std::vector<int> y = {1, 0, 1, 0};
  const std::vector<double> s = {0.9, 0.8, 0.4, 0.1};
  EXPECT_NEAR(average_precision(y, s), 0.5 * (1.0 + 2.0 / 3.0), 1e-12);
}

TEST(Reliability, PerfectCalibrationHasZeroEce) {
  // Scores equal to empirical rates within each bin.
  std::vector<int> y;
  std::vector<double> s;
  for (int i = 0; i < 10; ++i) {
    y.push_back(i < 2 ? 1 : 0);  // 20% positives
    s.push_back(0.2);
  }
  EXPECT_NEAR(expected_calibration_error(y, s, 10), 0.0, 1e-12);
}

TEST(Reliability, OverconfidentScoresPenalised) {
  std::vector<int> y(10, 0);
  y[0] = 1;  // 10% positives
  const std::vector<double> s(10, 0.9);
  EXPECT_NEAR(expected_calibration_error(y, s, 10), 0.8, 1e-12);
}

TEST(Reliability, BinsPartitionSamples) {
  std::vector<int> y;
  std::vector<double> s;
  for (int i = 0; i < 100; ++i) {
    y.push_back(i % 2);
    s.push_back(static_cast<double>(i) / 100.0);
  }
  const auto diagram = reliability_diagram(y, s, 10);
  std::size_t total = 0;
  for (const ReliabilityBin& bin : diagram) total += bin.count;
  EXPECT_EQ(total, 100u);
}

TEST(Reliability, ScoreOfOneLandsInLastBin) {
  const std::vector<int> y = {1, 0};
  const std::vector<double> s = {1.0, 0.0};
  const auto diagram = reliability_diagram(y, s, 10);
  ASSERT_EQ(diagram.size(), 2u);
  EXPECT_EQ(diagram.back().count, 1u);
  EXPECT_DOUBLE_EQ(diagram.back().mean_score, 1.0);
}

TEST(Reliability, ZeroBinsThrows) {
  EXPECT_THROW((void)reliability_diagram({1, 0}, {0.5, 0.5}, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace hdc::eval
