#include "eval/bootstrap.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace hdc::eval {
namespace {

TEST(Bootstrap, PointEstimateMatchesMetric) {
  const std::vector<int> y_true = {1, 0, 1, 0, 1, 1, 0, 0};
  const std::vector<int> y_pred = {1, 0, 0, 0, 1, 1, 1, 0};
  const BootstrapInterval ci = bootstrap_accuracy(y_true, y_pred, 200);
  EXPECT_DOUBLE_EQ(ci.point, accuracy(y_true, y_pred));
  EXPECT_EQ(ci.resamples, 200u);
}

TEST(Bootstrap, IntervalContainsPoint) {
  util::Rng rng(1);
  std::vector<int> y_true;
  std::vector<int> y_pred;
  for (int i = 0; i < 100; ++i) {
    y_true.push_back(rng.bernoulli(0.4) ? 1 : 0);
    y_pred.push_back(rng.bernoulli(0.8) ? y_true.back() : 1 - y_true.back());
  }
  const BootstrapInterval ci = bootstrap_accuracy(y_true, y_pred, 500);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_LT(ci.lo, ci.hi);
}

TEST(Bootstrap, PerfectPredictionsGiveDegenerateInterval) {
  const std::vector<int> y = {1, 0, 1, 0, 1};
  const BootstrapInterval ci = bootstrap_accuracy(y, y, 100);
  EXPECT_DOUBLE_EQ(ci.point, 1.0);
  EXPECT_DOUBLE_EQ(ci.lo, 1.0);
  EXPECT_DOUBLE_EQ(ci.hi, 1.0);
}

TEST(Bootstrap, WiderSampleNarrowerInterval) {
  util::Rng rng(2);
  const auto make = [&](std::size_t n) {
    std::vector<int> y_true;
    std::vector<int> y_pred;
    for (std::size_t i = 0; i < n; ++i) {
      y_true.push_back(static_cast<int>(i % 2));
      y_pred.push_back(rng.bernoulli(0.75) ? y_true.back() : 1 - y_true.back());
    }
    const BootstrapInterval ci = bootstrap_accuracy(y_true, y_pred, 400);
    return ci.hi - ci.lo;
  };
  EXPECT_GT(make(40), make(4000));
}

TEST(Bootstrap, DeterministicPerSeed) {
  const std::vector<int> y_true = {1, 0, 1, 0, 1, 0, 1, 0, 1, 1};
  const std::vector<int> y_pred = {1, 0, 0, 0, 1, 1, 1, 0, 1, 0};
  const auto a = bootstrap_accuracy(y_true, y_pred, 300, 0.95, 7);
  const auto b = bootstrap_accuracy(y_true, y_pred, 300, 0.95, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(Bootstrap, CustomMetricSupported) {
  const std::vector<int> y_true = {1, 1, 0, 0};
  const std::vector<int> y_pred = {1, 0, 0, 1};
  const BootstrapInterval ci = bootstrap_metric(
      y_true, y_pred,
      [](const std::vector<int>& t, const std::vector<int>& p) {
        return compute_metrics(t, p).recall;
      },
      100);
  EXPECT_DOUBLE_EQ(ci.point, 0.5);
}

TEST(Bootstrap, F1Convenience) {
  const std::vector<int> y_true = {1, 1, 1, 0, 0, 0};
  const std::vector<int> y_pred = {1, 1, 0, 0, 0, 1};
  const BootstrapInterval ci = bootstrap_f1(y_true, y_pred, 100);
  EXPECT_DOUBLE_EQ(ci.point, compute_metrics(y_true, y_pred).f1);
}

TEST(Bootstrap, RejectsBadArguments) {
  const std::vector<int> y = {1, 0};
  EXPECT_THROW((void)bootstrap_accuracy({}, {}, 10), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_accuracy(y, {1}, 10), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_accuracy(y, y, 0), std::invalid_argument);
  EXPECT_THROW((void)bootstrap_accuracy(y, y, 10, 1.5), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::eval
