#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace hdc::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t a = 123;
  std::uint64_t b = 123;
  EXPECT_EQ(splitmix64(a), splitmix64(b));
  EXPECT_EQ(a, b);
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  const std::uint64_t second = splitmix64(s);
  EXPECT_NE(first, second);
}

TEST(MixSeed, DistinctStreamsDiffer) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t stream = 0; stream < 1000; ++stream) {
    seen.insert(mix_seed(42, stream));
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(MixSeed, DependsOnSeed) {
  EXPECT_NE(mix_seed(1, 0), mix_seed(2, 0));
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 10; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(Rng, ReseedResets) {
  Rng a(99);
  const std::uint64_t first = a();
  a.reseed(99);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsHalf) {
  Rng rng(4);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 7.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 7.0);
  }
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroIsZero) {
  Rng rng(8);
  EXPECT_EQ(rng.below(0), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(9);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / kDraws, 0.1, 0.01);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(10);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= v == -2;
    saw_hi |= v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(11);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(12);
  constexpr int kN = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalWithParams) {
  Rng rng(13);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kN, 10.0, 0.05);
}

TEST(Rng, GammaMeanMatchesShapeScale) {
  Rng rng(14);
  constexpr int kN = 100000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) sum += rng.gamma(2.0, 3.0);
  EXPECT_NEAR(sum / kN, 6.0, 0.15);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(15);
  constexpr int kN = 50000;
  double sum = 0.0;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gamma(0.5, 2.0);
    EXPECT_GE(g, 0.0);
    sum += g;
  }
  EXPECT_NEAR(sum / kN, 1.0, 0.1);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(16);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Rng, ShuffleActuallyMoves) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  int moved = 0;
  for (int i = 0; i < 100; ++i) {
    if (v[static_cast<std::size_t>(i)] != i) ++moved;
  }
  EXPECT_GT(moved, 50);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(18);
  const auto sample = rng.sample_without_replacement(50, 20);
  EXPECT_EQ(sample.size(), 20u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const std::size_t i : sample) EXPECT_LT(i, 50u);
}

TEST(Rng, SampleFullRangeIsPermutation) {
  Rng rng(19);
  const auto sample = rng.sample_without_replacement(10, 10);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleTooManyThrows) {
  Rng rng(20);
  EXPECT_THROW((void)rng.sample_without_replacement(5, 6), std::invalid_argument);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformStaysCalibratedAcrossSeeds) {
  Rng rng(GetParam());
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 2ULL, 42ULL, 1234567ULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace hdc::util
