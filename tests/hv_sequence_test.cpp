#include "hv/sequence.hpp"

#include <gtest/gtest.h>

#include "hv/item_memory.hpp"
#include "util/rng.hpp"

namespace hdc::hv {
namespace {

constexpr std::size_t kDim = 10000;

std::vector<BitVector> random_items(std::size_t count, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<BitVector> out;
  for (std::size_t i = 0; i < count; ++i) out.push_back(BitVector::random(kDim, rng));
  return out;
}

TEST(EncodeSequence, SingleElementIsIdentity) {
  const auto items = random_items(1, 1);
  EXPECT_EQ(encode_sequence(items), items[0]);
}

TEST(EncodeSequence, EmptyThrows) {
  const std::vector<BitVector> none;
  EXPECT_THROW((void)encode_sequence(none), std::invalid_argument);
}

TEST(EncodeSequence, MixedDimsThrow) {
  const std::vector<BitVector> bad = {BitVector(8), BitVector(16)};
  EXPECT_THROW((void)encode_sequence(bad), std::invalid_argument);
}

TEST(EncodeSequence, OrderMatters) {
  const auto items = random_items(2, 2);
  const std::vector<BitVector> ab = {items[0], items[1]};
  const std::vector<BitVector> ba = {items[1], items[0]};
  const BitVector enc_ab = encode_sequence(ab);
  const BitVector enc_ba = encode_sequence(ba);
  EXPECT_NE(enc_ab, enc_ba);
  // Reversed pair is quasi-orthogonal to the original encoding.
  EXPECT_NEAR(enc_ab.hamming_fraction(enc_ba), 0.5, 0.05);
}

TEST(EncodeSequence, SameSequenceSameEncoding) {
  const auto items = random_items(4, 3);
  EXPECT_EQ(encode_sequence(items), encode_sequence(items));
}

TEST(EncodeSequence, DissimilarToConstituents) {
  const auto items = random_items(3, 4);
  const BitVector enc = encode_sequence(items);
  for (const BitVector& v : items) {
    EXPECT_NEAR(enc.hamming_fraction(v), 0.5, 0.05);
  }
}

TEST(EncodeSequence, LastElementUnrotated) {
  // enc(a, b) ^ rho(a) == b: unbinding recovers the filler.
  const auto items = random_items(2, 5);
  const std::vector<BitVector> seq = {items[0], items[1]};
  const BitVector enc = encode_sequence(seq);
  EXPECT_EQ(enc ^ items[0].rotated(1), items[1]);
}

TEST(NGramEncoder, RejectsBadConfig) {
  EXPECT_THROW(NGramEncoder(0), std::invalid_argument);
  EXPECT_THROW(NGramEncoder(3, TiePolicy::kRandom), std::invalid_argument);
}

TEST(NGramEncoder, StreamShorterThanNThrows) {
  const NGramEncoder enc(3);
  const auto items = random_items(2, 6);
  EXPECT_THROW((void)enc.encode(items), std::invalid_argument);
}

TEST(NGramEncoder, UnigramsEqualMajority) {
  const NGramEncoder enc(1);
  const auto items = random_items(5, 7);
  EXPECT_EQ(enc.encode(items), majority(items));
}

TEST(NGramEncoder, SharedNGramsMakeStreamsSimilar) {
  // Two streams sharing most trigrams encode closer together than two
  // unrelated streams.
  ItemMemory memory(kDim, 8);
  const auto sym = [&](const std::string& s) { return memory.get(s); };
  const std::vector<BitVector> base = {sym("glu-high"), sym("bmi-high"),
                                       sym("age-mid"), sym("bp-high"),
                                       sym("insulin-high")};
  std::vector<BitVector> similar = base;
  similar[4] = sym("insulin-low");  // one symbol differs
  const std::vector<BitVector> unrelated = {sym("a"), sym("b"), sym("c"),
                                            sym("d"), sym("e")};
  const NGramEncoder enc(3);
  const BitVector eb = enc.encode(base);
  EXPECT_LT(eb.hamming(enc.encode(similar)), eb.hamming(enc.encode(unrelated)));
}

TEST(NGramEncoder, DeterministicEncoding) {
  const NGramEncoder enc(2);
  const auto items = random_items(6, 9);
  EXPECT_EQ(enc.encode(items), enc.encode(items));
}

}  // namespace
}  // namespace hdc::hv
