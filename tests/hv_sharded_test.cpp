// ShardedBitMatrix: the chunked encode must be byte-identical to the
// unsharded encode for every chunking (including ragged word-boundary shard
// sizes), merged popcounts must be exact integers, and the fingerprint must
// be chunking-invariant but data-sensitive.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/extractor.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "hv/sharded_bits.hpp"

namespace {

using hdc::hv::BitMatrix;
using hdc::hv::ShardedBitMatrix;

constexpr std::size_t kRows = 150;
constexpr std::size_t kDim = 96;

struct Encoded {
  hdc::data::Dataset ds;
  hdc::core::HdcFeatureExtractor extractor;
  BitMatrix whole;
};

hdc::core::ExtractorConfig test_config() {
  hdc::core::ExtractorConfig config;
  config.dimensions = kDim;
  config.seed = 42;
  return config;
}

const Encoded& encoded() {
  static const Encoded* cached = [] {
    auto* e = new Encoded{hdc::data::make_synthetic_cohort(kRows, 5),
                          hdc::core::HdcFeatureExtractor(test_config()),
                          BitMatrix()};
    e->extractor.fit(e->ds);
    e->whole = e->extractor.transform_bits(e->ds);
    return e;
  }();
  return *cached;
}

void expect_rows_match(const ShardedBitMatrix& sharded, const BitMatrix& whole) {
  ASSERT_EQ(sharded.rows(), whole.rows());
  ASSERT_EQ(sharded.cols(), whole.cols());
  const std::size_t words = whole.words_per_row();
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    const BitMatrix& shard = sharded.shard(s);
    ASSERT_EQ(shard.words_per_row(), words);
    for (std::size_t i = 0; i < shard.rows(); ++i) {
      const std::size_t global = sharded.shard_begin(s) + i;
      EXPECT_EQ(std::memcmp(shard.row_bits(i), whole.row_bits(global),
                            words * sizeof(std::uint64_t)),
                0)
          << "shard " << s << " row " << i;
    }
  }
}

TEST(ShardedEncode, RaggedChunkingsAreByteIdentical) {
  const Encoded& e = encoded();
  // 64 = exact word boundary, 65 = one past it, 127 = one short of two.
  for (const std::size_t shard_rows : {64u, 65u, 127u}) {
    const ShardedBitMatrix sharded =
        e.extractor.transform_bits_chunked(e.ds, shard_rows);
    EXPECT_EQ(sharded.num_shards(), (kRows + shard_rows - 1) / shard_rows);
    expect_rows_match(sharded, e.whole);
  }
}

TEST(ShardedEncode, FingerprintIsChunkingInvariant) {
  const Encoded& e = encoded();
  const std::uint64_t single =
      e.extractor.transform_bits_chunked(e.ds, 0).fingerprint();
  for (const std::size_t shard_rows : {64u, 65u, 127u}) {
    EXPECT_EQ(
        e.extractor.transform_bits_chunked(e.ds, shard_rows).fingerprint(),
        single)
        << "shard_rows=" << shard_rows;
  }
}

TEST(ShardedEncode, FingerprintIsDataSensitive) {
  const Encoded& e = encoded();
  const hdc::data::Dataset other = hdc::data::make_synthetic_cohort(kRows, 6);
  const std::uint64_t base =
      e.extractor.transform_bits_chunked(e.ds, 64).fingerprint();
  EXPECT_NE(e.extractor.transform_bits_chunked(other, 64).fingerprint(), base);
  // Dropping one row changes it too (rows are part of the hash).
  const hdc::data::Dataset fewer =
      hdc::data::make_synthetic_cohort(kRows - 1, 5);
  EXPECT_NE(e.extractor.transform_bits_chunked(fewer, 64).fingerprint(), base);
}

TEST(ShardedEncode, MergedColumnPopcountsAreExact) {
  const Encoded& e = encoded();
  const ShardedBitMatrix sharded = e.extractor.transform_bits_chunked(e.ds, 65);
  for (std::size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(sharded.column_popcount(j), e.whole.column_popcount(j))
        << "column " << j;
  }
}

TEST(ShardedEncode, MaskedPopcountWithFullMasksEqualsColumnPopcount) {
  const Encoded& e = encoded();
  const ShardedBitMatrix sharded = e.extractor.transform_bits_chunked(e.ds, 64);
  std::vector<hdc::hv::RowMask> masks;
  for (std::size_t s = 0; s < sharded.num_shards(); ++s) {
    masks.push_back(hdc::hv::RowMask::all(sharded.shard_rows(s)));
  }
  for (const std::size_t j : {std::size_t{0}, kDim / 2, kDim - 1}) {
    EXPECT_EQ(sharded.masked_column_popcount(j, masks),
              sharded.column_popcount(j));
  }
  // Empty masks select nothing.
  for (hdc::hv::RowMask& mask : masks) {
    mask = hdc::hv::RowMask::none(mask.rows());
  }
  EXPECT_EQ(sharded.masked_column_popcount(0, masks), 0u);
}

TEST(ShardedEncode, ConcatenateRebuildsTheUnshardedMatrix) {
  const Encoded& e = encoded();
  const ShardedBitMatrix sharded = e.extractor.transform_bits_chunked(e.ds, 65);
  const BitMatrix concat = sharded.concatenate();
  ASSERT_EQ(concat.rows(), e.whole.rows());
  ASSERT_EQ(concat.cols(), e.whole.cols());
  for (std::size_t j = 0; j < kDim; ++j) {
    EXPECT_EQ(std::memcmp(concat.column(j), e.whole.column(j),
                          e.whole.words_per_column() * sizeof(std::uint64_t)),
              0)
        << "column " << j;
  }
  EXPECT_GT(sharded.resident_bytes(), 0u);
}

TEST(ShardedEncode, ShardGeometry) {
  const Encoded& e = encoded();
  const ShardedBitMatrix sharded = e.extractor.transform_bits_chunked(e.ds, 64);
  ASSERT_EQ(sharded.num_shards(), 3u);  // 64 + 64 + 22
  EXPECT_EQ(sharded.shard_begin(0), 0u);
  EXPECT_EQ(sharded.shard_begin(1), 64u);
  EXPECT_EQ(sharded.shard_begin(2), 128u);
  EXPECT_EQ(sharded.shard_rows(2), kRows - 128);
}

}  // namespace
