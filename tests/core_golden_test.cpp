// Golden determinism snapshots: a fixed-seed end-to-end experiment on the
// synthetic Pima M and Sylhet datasets must reproduce these exact confusion
// counts, metrics, and encoded-vector hash on every platform and at every
// thread count. If a change moves these numbers it is either a behaviour
// change (update the snapshot deliberately, with the paper tables re-checked)
// or a lost determinism guarantee (fix the code).
#include <gtest/gtest.h>

#include <cstdint>

#include "core/experiment.hpp"
#include "core/extractor.hpp"
#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "eval/metrics.hpp"
#include "parallel/thread_pool.hpp"

namespace hdc::core {
namespace {

/// Fixed-seed config: extractor defaults (10,000 bits, seed 0xd1abe7e5),
/// dataset generators at their default seeds (Pima 2023, Sylhet 520).
ExperimentConfig golden_config() { return ExperimentConfig{}; }

data::Dataset golden_pima() {
  return data::impute_class_median(data::make_pima({}));
}

std::uint64_t fnv1a_words(const std::vector<hv::BitVector>& vectors) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const hv::BitVector& v : vectors) {
    for (const std::uint64_t w : v.words()) {
      h ^= w;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

void expect_matches_confusion(const eval::BinaryMetrics& m, std::size_t tp,
                              std::size_t tn, std::size_t fp, std::size_t fn) {
  EXPECT_EQ(m.confusion.tp, tp);
  EXPECT_EQ(m.confusion.tn, tn);
  EXPECT_EQ(m.confusion.fp, fp);
  EXPECT_EQ(m.confusion.fn, fn);
  // The derived metrics must equal, bit-for-bit, what the metrics module
  // computes from the golden confusion counts.
  const eval::BinaryMetrics expected =
      eval::metrics_from_confusion({tp, tn, fp, fn});
  EXPECT_DOUBLE_EQ(m.accuracy, expected.accuracy);
  EXPECT_DOUBLE_EQ(m.precision, expected.precision);
  EXPECT_DOUBLE_EQ(m.recall, expected.recall);
  EXPECT_DOUBLE_EQ(m.specificity, expected.specificity);
  EXPECT_DOUBLE_EQ(m.f1, expected.f1);
}

TEST(GoldenSnapshot, PimaHammingLoo) {
  const eval::BinaryMetrics m = hamming_loo(golden_pima(), golden_config());
  expect_matches_confusion(m, 181, 434, 66, 87);
  EXPECT_NEAR(m.accuracy, 0.80078125, 1e-12);       // 615/768
  EXPECT_NEAR(m.f1, 0.70291262135922339, 1e-12);
}

TEST(GoldenSnapshot, SylhetHammingLoo) {
  const eval::BinaryMetrics m = hamming_loo(data::make_sylhet({}), golden_config());
  expect_matches_confusion(m, 303, 181, 19, 17);
  EXPECT_NEAR(m.accuracy, 0.93076923076923079, 1e-12);  // 484/520
  EXPECT_NEAR(m.f1, 0.94392523364485992, 1e-12);
}

TEST(GoldenSnapshot, EncodedVectorsHash) {
  const data::Dataset pima = golden_pima();
  HdcFeatureExtractor extractor(golden_config().extractor);
  extractor.fit(pima);
  EXPECT_EQ(fnv1a_words(extractor.transform(pima)), 7270215670140993532ULL);
}

/// The acceptance contract of the batch engine: re-running the identical
/// experiment with threads=1 and threads=hardware_threads() produces the
/// exact same confusion matrix and metrics.
TEST(GoldenSnapshot, MetricsThreadCountInvariant) {
  for (const bool use_sylhet : {false, true}) {
    const data::Dataset ds = use_sylhet ? data::make_sylhet({}) : golden_pima();
    ExperimentConfig serial = golden_config();
    serial.threads = 1;
    ExperimentConfig wide = golden_config();
    wide.threads = parallel::hardware_threads();
    const eval::BinaryMetrics a = hamming_loo(ds, serial);
    const eval::BinaryMetrics b = hamming_loo(ds, wide);
    EXPECT_EQ(a.confusion.tp, b.confusion.tp);
    EXPECT_EQ(a.confusion.tn, b.confusion.tn);
    EXPECT_EQ(a.confusion.fp, b.confusion.fp);
    EXPECT_EQ(a.confusion.fn, b.confusion.fn);
    EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
    EXPECT_DOUBLE_EQ(a.f1, b.f1);
  }
}

/// Packed transform and vector transform describe the same hyperspace.
TEST(GoldenSnapshot, PackedTransformAgrees) {
  const data::Dataset sylhet = data::make_sylhet({});
  HdcFeatureExtractor extractor(golden_config().extractor);
  extractor.fit(sylhet);
  const std::vector<hv::BitVector> vectors = extractor.transform(sylhet);
  const hv::PackedHVs packed = extractor.transform_packed(sylhet);
  ASSERT_EQ(packed.rows(), vectors.size());
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(packed.unpack_row(i), vectors[i]) << i;
  }
}

}  // namespace
}  // namespace hdc::core
