// ChunkedDataset backends: shard plans, chunk-invariance of the in-memory /
// synthetic / streaming-CSV sources, and the streaming reader's row-numbered
// rejection of files whose shape changes between prescan and chunk().
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/chunked.hpp"
#include "data/csv.hpp"
#include "data/synthetic.hpp"

namespace {

using hdc::data::ChunkRange;
using hdc::data::Dataset;
using hdc::data::make_shard_plan;

// Every value, label, and column of `chunk` must equal rows
// [begin, begin + chunk.n_rows()) of `whole`.
void expect_rows_equal(const Dataset& whole, const Dataset& chunk,
                       std::size_t begin) {
  ASSERT_EQ(chunk.n_cols(), whole.n_cols());
  for (std::size_t i = 0; i < chunk.n_rows(); ++i) {
    EXPECT_EQ(chunk.label(i), whole.label(begin + i));
    for (std::size_t j = 0; j < whole.n_cols(); ++j) {
      EXPECT_EQ(chunk.value(i, j), whole.value(begin + i, j))
          << "row " << begin + i << " col " << j;
    }
  }
}

TEST(ShardPlan, CoversRowsInAscendingOrder) {
  const std::vector<ChunkRange> plan = make_shard_plan(130, 64);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], (ChunkRange{0, 64}));
  EXPECT_EQ(plan[1], (ChunkRange{64, 128}));
  EXPECT_EQ(plan[2], (ChunkRange{128, 130}));  // shorter tail
}

TEST(ShardPlan, ZeroShardRowsMeansOneShard) {
  const std::vector<ChunkRange> plan = make_shard_plan(77, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], (ChunkRange{0, 77}));
}

TEST(ShardPlan, EmptyRowsYieldEmptyPlan) {
  EXPECT_TRUE(make_shard_plan(0, 64).empty());
  EXPECT_TRUE(make_shard_plan(0, 0).empty());
}

TEST(InMemoryChunks, ChunksEqualTheDatasetRowForRow) {
  const Dataset ds = hdc::data::make_synthetic_cohort(97, 3);
  const hdc::data::InMemoryChunks chunks(ds);
  EXPECT_EQ(chunks.n_rows(), ds.n_rows());
  for (const ChunkRange& range : make_shard_plan(ds.n_rows(), 31)) {
    const Dataset chunk = chunks.chunk(range.begin, range.end);
    ASSERT_EQ(chunk.n_rows(), range.rows());
    expect_rows_equal(ds, chunk, range.begin);
  }
}

TEST(SyntheticCohortChunks, AnyChunkingEqualsTheWholeCohort) {
  constexpr std::size_t kRows = 150;
  constexpr std::uint64_t kSeed = 11;
  const Dataset whole = hdc::data::make_synthetic_cohort(kRows, kSeed);
  const hdc::data::SyntheticCohortChunks chunks(kRows, kSeed);
  ASSERT_EQ(chunks.n_rows(), kRows);
  // Three different chunkings, including ragged word-boundary sizes.
  for (const std::size_t shard_rows : {64u, 65u, 127u}) {
    for (const ChunkRange& range : make_shard_plan(kRows, shard_rows)) {
      const Dataset chunk = chunks.chunk(range.begin, range.end);
      ASSERT_EQ(chunk.n_rows(), range.rows());
      expect_rows_equal(whole, chunk, range.begin);
    }
  }
}

TEST(SyntheticCohortChunks, RangeValidation) {
  const hdc::data::SyntheticCohortChunks chunks(10, 1);
  EXPECT_THROW((void)chunks.chunk(0, 11), std::out_of_range);
  EXPECT_THROW((void)chunks.chunk(5, 4), std::out_of_range);
}

class CsvStreamChunksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/stream_chunks.csv";
    std::ofstream out(path_);
    out << "age,bmi,smoker,label\n";
    for (int i = 0; i < 20; ++i) {
      out << 20 + i << "," << 18.5 + 0.25 * i << "," << i % 2 << ","
          << (i % 3 == 0 ? 1 : 0) << "\n";
    }
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
};

TEST_F(CsvStreamChunksTest, ChunksEqualReadCsvFile) {
  const Dataset whole = hdc::data::read_csv_file(path_);
  const hdc::data::CsvStreamChunks chunks(path_);
  ASSERT_EQ(chunks.n_rows(), whole.n_rows());
  ASSERT_EQ(chunks.columns().size(), whole.columns().size());
  for (std::size_t j = 0; j < whole.n_cols(); ++j) {
    EXPECT_EQ(chunks.columns()[j].name, whole.columns()[j].name);
    EXPECT_EQ(chunks.columns()[j].kind, whole.columns()[j].kind);
  }
  for (const ChunkRange& range : make_shard_plan(whole.n_rows(), 7)) {
    const Dataset chunk = chunks.chunk(range.begin, range.end);
    ASSERT_EQ(chunk.n_rows(), range.rows());
    expect_rows_equal(whole, chunk, range.begin);
  }
}

TEST_F(CsvStreamChunksTest, ChunkIsAPureFunctionOfTheRange) {
  const hdc::data::CsvStreamChunks chunks(path_);
  // Out-of-order and repeated requests return identical rows.
  const Dataset late = chunks.chunk(10, 20);
  const Dataset early = chunks.chunk(0, 10);
  const Dataset late_again = chunks.chunk(10, 20);
  expect_rows_equal(late, late_again, 0);
  const Dataset whole = chunks.chunk(0, 20);
  expect_rows_equal(whole, early, 0);
  expect_rows_equal(whole, late, 10);
}

TEST_F(CsvStreamChunksTest, PrescanRejectsColumnCountMismatchWithLineNumber) {
  {
    std::ofstream out(path_, std::ios::app);
    out << "61,31.0,1\n";  // one cell short, file line 22
  }
  try {
    const hdc::data::CsvStreamChunks chunks(path_);
    FAIL() << "prescan accepted a short row";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 22"), std::string::npos)
        << e.what();
  }
}

TEST_F(CsvStreamChunksTest, MidStreamRewriteFailsWithRowNumberedError) {
  const hdc::data::CsvStreamChunks chunks(path_);  // prescan sees 20 good rows
  // Rewrite the file between prescan and chunk(): same header, but data row
  // 16 (file line 17) now has an extra cell. chunk() re-validates from the
  // recorded offsets instead of trusting them.
  {
    std::ofstream out(path_);
    out << "age,bmi,smoker,label\n";
    for (int i = 0; i < 20; ++i) {
      if (i == 15) {
        out << 20 + i << "," << 18.5 + 0.25 * i << "," << i % 2 << ",0,9\n";
      } else {
        out << 20 + i << "," << 18.5 + 0.25 * i << "," << i % 2 << ","
            << (i % 3 == 0 ? 1 : 0) << "\n";
      }
    }
  }
  EXPECT_NO_THROW((void)chunks.chunk(0, 10));  // untouched rows still parse
  try {
    (void)chunks.chunk(10, 20);
    FAIL() << "chunk() accepted a mid-stream column-count change";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 17"), std::string::npos)
        << e.what();
  }
}

TEST_F(CsvStreamChunksTest, MidStreamTruncationFailsInsteadOfMisaligning) {
  const hdc::data::CsvStreamChunks chunks(path_);
  {
    std::ofstream out(path_);  // truncate: only the header survives
    out << "age,bmi,smoker,label\n";
  }
  EXPECT_THROW((void)chunks.chunk(15, 20), std::runtime_error);
}

}  // namespace
