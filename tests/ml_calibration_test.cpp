#include "ml/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/curves.hpp"
#include "util/rng.hpp"

namespace hdc::ml {
namespace {

TEST(Platt, RecoversAKnownSigmoid) {
  // Labels drawn from sigmoid(2s - 1): the fitted map should be close.
  util::Rng rng(1);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 5000; ++i) {
    const double s = rng.uniform(-3.0, 3.0);
    const double p = 1.0 / (1.0 + std::exp(-(2.0 * s - 1.0)));
    scores.push_back(s);
    labels.push_back(rng.bernoulli(p) ? 1 : 0);
  }
  PlattCalibrator cal;
  cal.fit(scores, labels);
  EXPECT_NEAR(cal.slope(), 2.0, 0.25);
  EXPECT_NEAR(cal.intercept(), -1.0, 0.25);
}

TEST(Platt, OutputIsProbability) {
  util::Rng rng(2);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) {
    scores.push_back(rng.normal());
    labels.push_back(scores.back() > 0 ? 1 : 0);
  }
  PlattCalibrator cal;
  cal.fit(scores, labels);
  for (const double s : {-10.0, -1.0, 0.0, 1.0, 10.0}) {
    const double p = cal.transform(s);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST(Platt, MonotoneInScoreWhenPositivesScoreHigher) {
  util::Rng rng(3);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int y = i % 2;
    scores.push_back(rng.normal(y == 1 ? 1.0 : -1.0, 1.0));
    labels.push_back(y);
  }
  PlattCalibrator cal;
  cal.fit(scores, labels);
  EXPECT_GT(cal.slope(), 0.0);
  EXPECT_LT(cal.transform(-2.0), cal.transform(2.0));
}

TEST(Platt, ImprovesCalibrationOfOverconfidentScores) {
  // Raw "probabilities" pushed to the extremes; Platt pulls them back.
  util::Rng rng(4);
  std::vector<double> raw;
  std::vector<int> labels;
  for (int i = 0; i < 2000; ++i) {
    const double p_true = rng.uniform(0.3, 0.7);
    labels.push_back(rng.bernoulli(p_true) ? 1 : 0);
    // Overconfident transform of the true probability.
    raw.push_back(p_true > 0.5 ? 0.95 : 0.05);
  }
  PlattCalibrator cal;
  cal.fit(raw, labels);
  const double ece_raw = eval::expected_calibration_error(labels, raw);
  const double ece_cal =
      eval::expected_calibration_error(labels, cal.transform(raw));
  EXPECT_LT(ece_cal, ece_raw);
}

TEST(Platt, BatchTransformMatchesScalar) {
  util::Rng rng(5);
  std::vector<double> scores = {-1.0, 0.0, 0.5, 2.0};
  std::vector<int> labels = {0, 0, 1, 1};
  PlattCalibrator cal;
  cal.fit(scores, labels);
  const auto batch = cal.transform(scores);
  for (std::size_t i = 0; i < scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], cal.transform(scores[i]));
  }
}

TEST(Platt, RejectsBadInput) {
  PlattCalibrator cal;
  EXPECT_THROW(cal.fit({}, {}), std::invalid_argument);
  EXPECT_THROW(cal.fit({0.5}, {1, 0}), std::invalid_argument);
  EXPECT_THROW(cal.fit({0.5, 0.6}, {1, 1}), std::invalid_argument);
  EXPECT_THROW(cal.fit({0.5, 0.6}, {1, 2}), std::invalid_argument);
}

TEST(Platt, UnfittedThrows) {
  const PlattCalibrator cal;
  EXPECT_THROW((void)cal.transform(0.5), std::logic_error);
}

}  // namespace
}  // namespace hdc::ml
