#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "data/preprocess.hpp"

namespace hdc::data {
namespace {

TEST(MakePima, ShapeAndClassCounts) {
  const Dataset ds = make_pima();
  EXPECT_EQ(ds.n_rows(), 768u);
  EXPECT_EQ(ds.n_cols(), 8u);
  const auto [neg, pos] = ds.class_counts();
  EXPECT_EQ(neg, 500u);
  EXPECT_EQ(pos, 268u);
}

TEST(MakePima, ColumnNamesMatchPaper) {
  const Dataset ds = make_pima();
  EXPECT_EQ(ds.column(0).name, "Pregnancies");
  EXPECT_EQ(ds.column(1).name, "Glucose");
  EXPECT_EQ(ds.column(5).name, "BMI");
  EXPECT_EQ(ds.column(6).name, "DPF");
  EXPECT_EQ(ds.column(7).name, "Age");
}

TEST(MakePima, MissingnessRoughlyMatchesRealDataset) {
  const Dataset ds = make_pima();
  // Insulin ~49% missing, SkinThickness ~30% in the real CSV.
  const double insulin_missing =
      static_cast<double>(ds.column_stats(4).missing) / 768.0;
  const double skin_missing =
      static_cast<double>(ds.column_stats(3).missing) / 768.0;
  EXPECT_NEAR(insulin_missing, 0.47, 0.08);
  EXPECT_NEAR(skin_missing, 0.29, 0.08);
  // Roughly half the rows survive removal (real: 392/768 = 0.51).
  const Dataset clean = remove_missing_rows(ds);
  EXPECT_NEAR(static_cast<double>(clean.n_rows()) / 768.0, 0.5, 0.08);
}

TEST(MakePima, Table1StatisticsReproduced) {
  // The substitution's calibration target: per-class means of the paper's
  // Table I (within sampling tolerance on the cleaned dataset).
  const Dataset ds = remove_missing_rows(make_pima());
  struct Expectation {
    std::size_t col;
    double pos_mean;
    double neg_mean;
    double tol;
  };
  const Expectation expectations[] = {
      {1, 145.0, 111.0, 8.0},   // Glucose
      {5, 36.0, 32.0, 3.0},     // BMI
      {7, 36.0, 28.0, 4.0},     // Age
      {2, 74.0, 69.0, 5.0},     // BloodPressure
  };
  for (const auto& e : expectations) {
    EXPECT_NEAR(ds.column_stats_for_class(e.col, 1).mean, e.pos_mean, e.tol)
        << "positive col " << e.col;
    EXPECT_NEAR(ds.column_stats_for_class(e.col, 0).mean, e.neg_mean, e.tol)
        << "negative col " << e.col;
  }
}

TEST(MakePima, PositiveClassHasHigherGlucose) {
  const Dataset ds = remove_missing_rows(make_pima());
  EXPECT_GT(ds.column_stats_for_class(1, 1).mean,
            ds.column_stats_for_class(1, 0).mean + 15.0);
}

TEST(MakePima, ValuesWithinPublishedRanges) {
  const Dataset ds = make_pima({100, 100, false, 0.0, 9});
  const ColumnStats glucose = ds.column_stats(1);
  EXPECT_GE(glucose.min, 56.0);
  EXPECT_LE(glucose.max, 198.0);
  const ColumnStats dpf = ds.column_stats(6);
  EXPECT_GE(dpf.min, 0.08);
  EXPECT_LE(dpf.max, 2.42);
}

TEST(MakePima, DeterministicPerSeed) {
  const Dataset a = make_pima({50, 50, true, 0.05, 123});
  const Dataset b = make_pima({50, 50, true, 0.05, 123});
  ASSERT_EQ(a.n_rows(), b.n_rows());
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    for (std::size_t j = 0; j < a.n_cols(); ++j) {
      const double va = a.value(i, j);
      const double vb = b.value(i, j);
      if (Dataset::is_missing(va)) {
        EXPECT_TRUE(Dataset::is_missing(vb));
      } else {
        EXPECT_DOUBLE_EQ(va, vb);
      }
    }
  }
}

TEST(MakePima, NoMissingWhenDisabled) {
  const Dataset ds = make_pima({100, 50, false, 0.05, 5});
  EXPECT_EQ(ds.rows_with_missing(), 0u);
}

TEST(MakeSylhet, ShapeAndClassCounts) {
  const Dataset ds = make_sylhet();
  EXPECT_EQ(ds.n_rows(), 520u);
  EXPECT_EQ(ds.n_cols(), 16u);
  const auto [neg, pos] = ds.class_counts();
  EXPECT_EQ(neg, 200u);
  EXPECT_EQ(pos, 320u);
  EXPECT_EQ(ds.rows_with_missing(), 0u);
}

TEST(MakeSylhet, FeatureKinds) {
  const Dataset ds = make_sylhet();
  EXPECT_EQ(ds.column(0).kind, ColumnKind::kContinuous);  // Age
  for (std::size_t j = 1; j < ds.n_cols(); ++j) {
    EXPECT_EQ(ds.column(j).kind, ColumnKind::kBinary) << j;
  }
}

TEST(MakeSylhet, PolyuriaIsDiscriminative) {
  const Dataset ds = make_sylhet();
  // Column 2 = Polyuria: prevalence ~0.76 positive vs ~0.10 negative.
  const double pos_rate = ds.column_stats_for_class(2, 1).mean;
  const double neg_rate = ds.column_stats_for_class(2, 0).mean;
  EXPECT_GT(pos_rate, 0.6);
  EXPECT_LT(neg_rate, 0.25);
}

TEST(MakeSylhet, ItchingCarriesNoSignal) {
  const Dataset ds = make_sylhet();
  // Column 9 = Itching: ~0.5 in both classes.
  const double pos_rate = ds.column_stats_for_class(9, 1).mean;
  const double neg_rate = ds.column_stats_for_class(9, 0).mean;
  EXPECT_NEAR(pos_rate, neg_rate, 0.12);
}

TEST(MakeSylhet, AgeWithinBounds) {
  const Dataset ds = make_sylhet();
  const ColumnStats age = ds.column_stats(0);
  EXPECT_GE(age.min, 16.0);
  EXPECT_LE(age.max, 90.0);
}

TEST(MakeTwoGaussians, SeparationControlsOverlap) {
  const Dataset far = make_two_gaussians(100, 3, 6.0, 1);
  // With separation 6 (3 sigma per side), almost no overlap: the mean of
  // each class's first coordinate is +/- 3.
  EXPECT_LT(far.column_stats_for_class(0, 0).mean, -2.0);
  EXPECT_GT(far.column_stats_for_class(0, 1).mean, 2.0);
}

TEST(MakeTwoGaussians, ShapeAndLabels) {
  const Dataset ds = make_two_gaussians(25, 4, 1.0, 2);
  EXPECT_EQ(ds.n_rows(), 50u);
  EXPECT_EQ(ds.n_cols(), 4u);
  const auto [neg, pos] = ds.class_counts();
  EXPECT_EQ(neg, 25u);
  EXPECT_EQ(pos, 25u);
}

TEST(MakeSyntheticCohort, ChunkingIsInvariant) {
  const Dataset whole = make_synthetic_cohort(200, 7);
  EXPECT_EQ(whole.n_rows(), 200u);
  EXPECT_EQ(whole.n_cols(), 8u);

  // Any chunking of [0, n) concatenates to the same cohort; row i is a pure
  // function of (i, seed).
  const std::size_t splits[] = {0, 1, 63, 64, 200};
  std::size_t checked = 0;
  for (std::size_t s = 0; s + 1 < std::size(splits); ++s) {
    const Dataset chunk =
        make_synthetic_cohort_range(splits[s], splits[s + 1], 7);
    ASSERT_EQ(chunk.n_rows(), splits[s + 1] - splits[s]);
    for (std::size_t i = 0; i < chunk.n_rows(); ++i) {
      const std::size_t global = splits[s] + i;
      ASSERT_EQ(chunk.label(i), whole.label(global));
      for (std::size_t j = 0; j < whole.n_cols(); ++j) {
        ASSERT_EQ(chunk.value(i, j), whole.value(global, j)) << global;
      }
      ++checked;
    }
  }
  EXPECT_EQ(checked, whole.n_rows());
}

TEST(MakeSyntheticCohort, SeedChangesRowsAndPrevalenceIsSane) {
  const Dataset a = make_synthetic_cohort(500, 1);
  const Dataset b = make_synthetic_cohort(500, 2);
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    if (a.value(i, 1) != b.value(i, 1)) ++differing;
  }
  EXPECT_GT(differing, 450u);

  const auto [neg, pos] = a.class_counts();
  EXPECT_EQ(neg + pos, a.n_rows());
  const double rate = static_cast<double>(pos) / static_cast<double>(a.n_rows());
  EXPECT_GT(rate, 0.25);
  EXPECT_LT(rate, 0.45);
  // Complete cohort: the encode path needs no imputation.
  for (std::size_t i = 0; i < a.n_rows(); ++i) {
    for (std::size_t j = 0; j < a.n_cols(); ++j) {
      ASSERT_FALSE(std::isnan(a.value(i, j)));
    }
  }
}

TEST(MakeSyntheticCohort, RejectsInvertedRange) {
  EXPECT_THROW((void)make_synthetic_cohort_range(5, 4, 1),
               std::invalid_argument);
}

TEST(MakeXor, QuadrantStructure) {
  const Dataset ds = make_xor(50, 0.1, 3);
  EXPECT_EQ(ds.n_rows(), 200u);
  // Class 1 lives in the off-diagonal quadrants: x0*x1 < 0.
  std::size_t consistent = 0;
  for (std::size_t i = 0; i < ds.n_rows(); ++i) {
    const bool off_diagonal = ds.value(i, 0) * ds.value(i, 1) < 0.0;
    if (off_diagonal == (ds.label(i) == 1)) ++consistent;
  }
  EXPECT_GT(consistent, 190u);  // noise 0.1 keeps quadrants clean
}

}  // namespace
}  // namespace hdc::data
