#include "data/split.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hdc::data {
namespace {

std::vector<int> make_labels(std::size_t neg, std::size_t pos) {
  std::vector<int> labels(neg, 0);
  labels.insert(labels.end(), pos, 1);
  return labels;
}

template <typename... Parts>
void expect_partition(std::size_t n, const Parts&... parts) {
  std::set<std::size_t> seen;
  std::size_t total = 0;
  const auto absorb = [&](const std::vector<std::size_t>& part) {
    for (const std::size_t i : part) {
      EXPECT_LT(i, n);
      EXPECT_TRUE(seen.insert(i).second) << "duplicate index " << i;
    }
    total += part.size();
  };
  (absorb(parts), ...);
  EXPECT_EQ(total, n);
}

TEST(StratifiedSplit, IsAPartition) {
  const auto labels = make_labels(60, 40);
  const auto split = stratified_split(labels, 0.2, 1);
  expect_partition(labels.size(), split.train, split.test);
}

TEST(StratifiedSplit, PreservesClassRatio) {
  const auto labels = make_labels(60, 40);
  const auto split = stratified_split(labels, 0.2, 2);
  std::size_t test_pos = 0;
  for (const std::size_t i : split.test) test_pos += labels[i];
  EXPECT_EQ(split.test.size(), 20u);
  EXPECT_EQ(test_pos, 8u);  // 20% of 40 positives
}

TEST(StratifiedSplit, DeterministicPerSeed) {
  const auto labels = make_labels(30, 30);
  const auto a = stratified_split(labels, 0.25, 7);
  const auto b = stratified_split(labels, 0.25, 7);
  EXPECT_EQ(a.test, b.test);
  const auto c = stratified_split(labels, 0.25, 8);
  EXPECT_NE(a.test, c.test);
}

TEST(StratifiedSplit, BadFractionThrows) {
  const auto labels = make_labels(10, 10);
  EXPECT_THROW((void)stratified_split(labels, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)stratified_split(labels, 1.0, 1), std::invalid_argument);
}

TEST(StratifiedSplit, RejectsBadLabels) {
  std::vector<int> labels = {0, 1, 2};
  EXPECT_THROW((void)stratified_split(labels, 0.5, 1), std::invalid_argument);
}

TEST(StratifiedSplit3, IsAPartition) {
  const auto labels = make_labels(70, 30);
  const auto split = stratified_split3(labels, 0.15, 0.15, 3);
  expect_partition(labels.size(), split.train, split.val, split.test);
}

TEST(StratifiedSplit3, FractionsRespected) {
  const auto labels = make_labels(200, 200);
  const auto split = stratified_split3(labels, 0.15, 0.15, 4);
  EXPECT_EQ(split.val.size(), 60u);
  EXPECT_EQ(split.test.size(), 60u);
  EXPECT_EQ(split.train.size(), 280u);
}

TEST(StratifiedSplit3, StratifiesEachPart) {
  const auto labels = make_labels(100, 100);
  const auto split = stratified_split3(labels, 0.2, 0.2, 5);
  const auto count_pos = [&](const std::vector<std::size_t>& part) {
    std::size_t pos = 0;
    for (const std::size_t i : part) pos += labels[i];
    return pos;
  };
  EXPECT_EQ(count_pos(split.val), split.val.size() / 2);
  EXPECT_EQ(count_pos(split.test), split.test.size() / 2);
}

TEST(StratifiedSplit3, BadFractionsThrow) {
  const auto labels = make_labels(10, 10);
  EXPECT_THROW((void)stratified_split3(labels, 0.6, 0.5, 1), std::invalid_argument);
  EXPECT_THROW((void)stratified_split3(labels, 0.1, 0.0, 1), std::invalid_argument);
}

class KFoldSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(KFoldSweep, FoldsPartitionTheData) {
  const std::size_t k = GetParam();
  const auto labels = make_labels(53, 47);
  const StratifiedKFold folds(labels, k, 11);
  ASSERT_EQ(folds.k(), k);
  std::set<std::size_t> seen;
  std::size_t total = 0;
  for (std::size_t f = 0; f < k; ++f) {
    for (const std::size_t i : folds.fold_test(f)) {
      EXPECT_TRUE(seen.insert(i).second);
    }
    total += folds.fold_test(f).size();
  }
  EXPECT_EQ(total, labels.size());
}

TEST_P(KFoldSweep, TrainIsComplementOfTest) {
  const std::size_t k = GetParam();
  const auto labels = make_labels(40, 20);
  const StratifiedKFold folds(labels, k, 12);
  for (std::size_t f = 0; f < k; ++f) {
    const auto train = folds.fold_train(f);
    const auto& test = folds.fold_test(f);
    expect_partition(labels.size(), train, test);
  }
}

TEST_P(KFoldSweep, FoldSizesBalanced) {
  const std::size_t k = GetParam();
  const auto labels = make_labels(50, 50);
  const StratifiedKFold folds(labels, k, 13);
  std::size_t min_size = labels.size();
  std::size_t max_size = 0;
  for (std::size_t f = 0; f < k; ++f) {
    min_size = std::min(min_size, folds.fold_test(f).size());
    max_size = std::max(max_size, folds.fold_test(f).size());
  }
  EXPECT_LE(max_size - min_size, 2u);
}

INSTANTIATE_TEST_SUITE_P(Ks, KFoldSweep, ::testing::Values(2, 3, 5, 10));

TEST(StratifiedKFold, RejectsBadK) {
  const auto labels = make_labels(5, 5);
  EXPECT_THROW(StratifiedKFold(labels, 1, 1), std::invalid_argument);
  EXPECT_THROW(StratifiedKFold(labels, 11, 1), std::invalid_argument);
}

TEST(StratifiedKFold, ApproximatelyStratifiedFolds) {
  const auto labels = make_labels(60, 40);
  const StratifiedKFold folds(labels, 10, 14);
  for (std::size_t f = 0; f < 10; ++f) {
    std::size_t pos = 0;
    for (const std::size_t i : folds.fold_test(f)) pos += labels[i];
    EXPECT_EQ(folds.fold_test(f).size(), 10u);
    EXPECT_EQ(pos, 4u);
  }
}

}  // namespace
}  // namespace hdc::data
