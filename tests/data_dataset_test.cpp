#include "data/dataset.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace hdc::data {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

Dataset small_dataset() {
  Dataset ds({{"a", ColumnKind::kContinuous}, {"b", ColumnKind::kBinary}});
  ds.add_row(std::vector<double>{1.0, 0.0}, 0);
  ds.add_row(std::vector<double>{2.0, 1.0}, 1);
  ds.add_row(std::vector<double>{3.0, 1.0}, 0);
  ds.add_row(std::vector<double>{kNaN, 0.0}, 1);
  return ds;
}

TEST(Dataset, ShapeAndAccess) {
  const Dataset ds = small_dataset();
  EXPECT_EQ(ds.n_rows(), 4u);
  EXPECT_EQ(ds.n_cols(), 2u);
  EXPECT_DOUBLE_EQ(ds.value(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(ds.value(2, 1), 1.0);
  EXPECT_EQ(ds.label(0), 0);
  EXPECT_EQ(ds.label(3), 1);
  EXPECT_EQ(ds.column(1).name, "b");
  EXPECT_EQ(ds.column(1).kind, ColumnKind::kBinary);
}

TEST(Dataset, RowSpanMatchesValues) {
  const Dataset ds = small_dataset();
  const auto r = ds.row(1);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_DOUBLE_EQ(r[0], 2.0);
  EXPECT_DOUBLE_EQ(r[1], 1.0);
}

TEST(Dataset, AddRowValidatesArity) {
  Dataset ds({{"a", ColumnKind::kContinuous}});
  EXPECT_THROW(ds.add_row(std::vector<double>{1.0, 2.0}, 0), std::invalid_argument);
}

TEST(Dataset, AddRowValidatesLabel) {
  Dataset ds({{"a", ColumnKind::kContinuous}});
  EXPECT_THROW(ds.add_row(std::vector<double>{1.0}, 2), std::invalid_argument);
  EXPECT_THROW(ds.add_row(std::vector<double>{1.0}, -1), std::invalid_argument);
}

TEST(Dataset, MissingDetection) {
  const Dataset ds = small_dataset();
  EXPECT_TRUE(Dataset::is_missing(kNaN));
  EXPECT_FALSE(Dataset::is_missing(0.0));
  EXPECT_FALSE(ds.row_has_missing(0));
  EXPECT_TRUE(ds.row_has_missing(3));
  EXPECT_EQ(ds.rows_with_missing(), 1u);
}

TEST(Dataset, ClassCounts) {
  const Dataset ds = small_dataset();
  const auto [neg, pos] = ds.class_counts();
  EXPECT_EQ(neg, 2u);
  EXPECT_EQ(pos, 2u);
}

TEST(Dataset, ColumnStatsSkipMissing) {
  const Dataset ds = small_dataset();
  const ColumnStats s = ds.column_stats(0);
  EXPECT_EQ(s.present, 3u);
  EXPECT_EQ(s.missing, 1u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Dataset, ColumnStatsEvenCountMedian) {
  Dataset ds({{"a", ColumnKind::kContinuous}});
  for (const double v : {1.0, 2.0, 3.0, 10.0}) ds.add_row(std::vector<double>{v}, 0);
  EXPECT_DOUBLE_EQ(ds.column_stats(0).median, 2.5);
}

TEST(Dataset, PerClassStats) {
  const Dataset ds = small_dataset();
  const ColumnStats neg = ds.column_stats_for_class(0, 0);
  EXPECT_EQ(neg.present, 2u);
  EXPECT_DOUBLE_EQ(neg.mean, 2.0);  // rows 0 and 2: values 1, 3
  const ColumnStats pos = ds.column_stats_for_class(0, 1);
  EXPECT_EQ(pos.present, 1u);  // row 3 is missing
  EXPECT_DOUBLE_EQ(pos.mean, 2.0);
}

TEST(Dataset, SubsetPreservesOrderAndLabels) {
  const Dataset ds = small_dataset();
  const std::vector<std::size_t> idx = {2, 0};
  const Dataset sub = ds.subset(idx);
  EXPECT_EQ(sub.n_rows(), 2u);
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.value(1, 0), 1.0);
  EXPECT_EQ(sub.label(0), 0);
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const Dataset ds = small_dataset();
  const std::vector<std::size_t> idx = {7};
  EXPECT_THROW((void)ds.subset(idx), std::out_of_range);
}

TEST(Dataset, FeatureMatrixRoundTrip) {
  const Dataset ds = small_dataset();
  const auto X = ds.feature_matrix();
  ASSERT_EQ(X.size(), 4u);
  EXPECT_DOUBLE_EQ(X[1][0], 2.0);
  EXPECT_TRUE(std::isnan(X[3][0]));
}

TEST(Dataset, EmptyDatasetStats) {
  Dataset ds({{"a", ColumnKind::kContinuous}});
  const ColumnStats s = ds.column_stats(0);
  EXPECT_EQ(s.present, 0u);
  EXPECT_EQ(s.missing, 0u);
}

}  // namespace
}  // namespace hdc::data
