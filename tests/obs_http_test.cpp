// obs::MetricsServer tests: a raw-socket client scrapes /metrics and
// /healthz from the embedded listener, the Prometheus text exposition is
// parsed back line by line and cross-checked against the registry snapshot,
// unknown routes and methods get 404/405, and scraping stays correct while
// writer threads hammer the instruments (the TSan shape behind the
// obs/telemetry labels). Ephemeral ports keep parallel test runs isolated.
#include "obs/telemetry.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cctype>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/metrics.hpp"
#include "obs/quantile.hpp"

namespace hdc::obs {
namespace {

/// Blocking one-shot HTTP exchange against 127.0.0.1:port; returns the full
/// response (the server closes after one response, so read-to-EOF is exact).
std::string http_request(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    ADD_FAILURE() << "connect to 127.0.0.1:" << port << " failed: "
                  << std::strerror(errno);
    return {};
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof buffer, 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& target) {
  return http_request(port, "GET " + target +
                                " HTTP/1.1\r\nHost: localhost\r\n"
                                "Connection: close\r\n\r\n");
}

std::string body_of(const std::string& response) {
  const std::size_t at = response.find("\r\n\r\n");
  return at == std::string::npos ? std::string() : response.substr(at + 4);
}

/// Every non-comment exposition line must be `<name>{labels}? <value>` with
/// a [a-zA-Z_:][a-zA-Z0-9_:]* name and a parseable double (NaN allowed).
void expect_prometheus_parses(const std::string& body) {
  std::size_t start = 0;
  std::size_t lines = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    const std::string line = body.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    ++lines;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name = line.substr(0, space);
    const std::size_t brace = name.find('{');
    if (brace != std::string::npos) {
      ASSERT_EQ(name.back(), '}') << line;
      name = name.substr(0, brace);
    }
    ASSERT_FALSE(name.empty()) << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(name[0])) != 0 ||
                name[0] == '_' || name[0] == ':')
        << line;
    for (const char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                  c == '_' || c == ':')
          << line;
    }
    const std::string value = line.substr(space + 1);
    EXPECT_NO_THROW((void)std::stod(value)) << line;
  }
  EXPECT_GT(lines, 0u);
}

class ObsHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_metrics();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_metrics();
  }
};

TEST_F(ObsHttpTest, HealthzAnswersOk) {
  MetricsServer server;
  ASSERT_TRUE(server.ok()) << server.error();
  ASSERT_GT(server.port(), 0);
  const std::string response = http_get(server.port(), "/healthz");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST_F(ObsHttpTest, MetricsExpositionMatchesRegistrySnapshot) {
  counter("http_test.requests").add(7);
  gauge("http_test.depth").set(3);
  WindowedHistogram& latency = windowed_histogram("http_test.latency_seconds");
  for (int i = 1; i <= 100; ++i) latency.record(1e-4 * i);

  MetricsServer server;
  ASSERT_TRUE(server.ok()) << server.error();
  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.1 200", 0), 0u) << response;
  EXPECT_NE(response.find(kPrometheusContentType), std::string::npos);

  const std::string body = body_of(response);
  expect_prometheus_parses(body);
  EXPECT_NE(body.find("hdc_http_test_requests 7"), std::string::npos) << body;
  EXPECT_NE(body.find("hdc_http_test_depth 3"), std::string::npos) << body;
  // The windowed sketch is exported as a Prometheus summary.
  EXPECT_NE(body.find("hdc_http_test_latency_seconds{quantile=\"0.99\"}"),
            std::string::npos)
      << body;
  EXPECT_NE(body.find("hdc_http_test_latency_seconds_count 100"),
            std::string::npos)
      << body;
  // Scrape-time snapshot agrees with a direct snapshot (registry unchanged
  // in between): the counter line is exactly what to_prometheus renders.
  const std::string direct = to_prometheus(snapshot());
  EXPECT_NE(direct.find("hdc_http_test_requests 7"), std::string::npos);
}

TEST_F(ObsHttpTest, UnknownTargetsAndMethodsAreRejected) {
  MetricsServer server;
  ASSERT_TRUE(server.ok()) << server.error();
  EXPECT_EQ(http_get(server.port(), "/nope").rfind("HTTP/1.1 404", 0), 0u);
  const std::string post = http_request(
      server.port(),
      "POST /metrics HTTP/1.1\r\nHost: localhost\r\n"
      "Content-Length: 0\r\nConnection: close\r\n\r\n");
  EXPECT_EQ(post.rfind("HTTP/1.1 405", 0), 0u) << post;
}

TEST_F(ObsHttpTest, ScrapeStaysValidUnderRecordingLoad) {
  MetricsServer server;
  ASSERT_TRUE(server.ok()) << server.error();
  std::vector<std::thread> writers;
  writers.reserve(2);
  for (std::size_t t = 0; t < 2; ++t) {
    writers.emplace_back([] {
      WindowedHistogram& latency =
          windowed_histogram("http_test.load_seconds");
      for (std::size_t i = 0; i < 3000; ++i) {
        counter("http_test.load").add(1);
        latency.record(1e-5 * static_cast<double>(1 + (i % 11)));
      }
    });
  }
  for (std::size_t s = 0; s < 5; ++s) {
    const std::string response = http_get(server.port(), "/metrics");
    ASSERT_EQ(response.rfind("HTTP/1.1 200", 0), 0u);
    expect_prometheus_parses(body_of(response));
  }
  for (std::thread& t : writers) t.join();
  const std::string final_body = body_of(http_get(server.port(), "/metrics"));
  EXPECT_NE(final_body.find("hdc_http_test_load 6000"), std::string::npos)
      << final_body;
}

TEST_F(ObsHttpTest, EphemeralPortsDoNotCollideAndStopIsIdempotent) {
  MetricsServer a;
  MetricsServer b;
  ASSERT_TRUE(a.ok()) << a.error();
  ASSERT_TRUE(b.ok()) << b.error();
  EXPECT_NE(a.port(), b.port());
  const std::uint16_t port = a.port();
  a.stop();
  a.stop();
  // The listener is gone: a fresh connect must fail.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_NE(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
            0);
  ::close(fd);
  EXPECT_EQ(http_get(b.port(), "/healthz").rfind("HTTP/1.1 200", 0), 0u);
}

}  // namespace
}  // namespace hdc::obs
