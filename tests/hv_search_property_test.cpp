// Property tests for the batch engine: the blocked/parallel Hamming search
// kernels must agree bit-for-bit with the naive BitVector::hamming loop for
// random sizes, seeds, tile shapes, and thread counts; plus the operator
// algebra the kernels rely on (rotation composition, bind isometry, bundling
// density envelope) and BatchEncoder == row-at-a-time RecordEncoder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "hv/batch_encoder.hpp"
#include "hv/bitvector.hpp"
#include "hv/encoders.hpp"
#include "hv/ops.hpp"
#include "hv/search.hpp"
#include "parallel/thread_pool.hpp"
#include "util/rng.hpp"

namespace hdc::hv {
namespace {

struct SearchCase {
  std::size_t dim;
  std::size_t queries;
  std::size_t database;
  std::uint64_t seed;
};

std::vector<BitVector> random_vectors(std::size_t n, std::size_t dim, util::Rng& rng) {
  std::vector<BitVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(BitVector::random(dim, rng));
  return out;
}

/// Reference: per-pair BitVector::hamming, ties to lowest index.
std::vector<Neighbor> naive_nearest(const std::vector<BitVector>& queries,
                                    const std::vector<BitVector>& database,
                                    bool exclude_same_index) {
  std::vector<Neighbor> out;
  out.reserve(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    Neighbor best{database.size(), queries[q].size() + 1};
    for (std::size_t j = 0; j < database.size(); ++j) {
      if (exclude_same_index && j == q) continue;
      const std::size_t d = queries[q].hamming(database[j]);
      if (d < best.distance) best = Neighbor{j, d};
    }
    out.push_back(best);
  }
  return out;
}

std::vector<std::vector<Neighbor>> naive_top_k(const std::vector<BitVector>& queries,
                                               const std::vector<BitVector>& database,
                                               std::size_t k) {
  std::vector<std::vector<Neighbor>> out(queries.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    std::vector<Neighbor> all;
    for (std::size_t j = 0; j < database.size(); ++j) {
      all.push_back(Neighbor{j, queries[q].hamming(database[j])});
    }
    std::sort(all.begin(), all.end(), [](const Neighbor& a, const Neighbor& b) {
      return a.distance != b.distance ? a.distance < b.distance : a.index < b.index;
    });
    all.resize(std::min(k, all.size()));
    out[q] = std::move(all);
  }
  return out;
}

class SearchPropertySweep : public ::testing::TestWithParam<SearchCase> {};

TEST_P(SearchPropertySweep, PackRoundTrips) {
  util::Rng rng(GetParam().seed);
  const auto vectors = random_vectors(GetParam().database, GetParam().dim, rng);
  const PackedHVs packed = PackedHVs::pack(vectors);
  ASSERT_EQ(packed.rows(), vectors.size());
  ASSERT_EQ(packed.bits(), GetParam().dim);
  for (std::size_t i = 0; i < vectors.size(); ++i) {
    EXPECT_EQ(packed.unpack_row(i), vectors[i]) << i;
  }
}

TEST_P(SearchPropertySweep, NearestMatchesNaiveLoop) {
  util::Rng rng(GetParam().seed + 1);
  const auto queries = random_vectors(GetParam().queries, GetParam().dim, rng);
  const auto database = random_vectors(GetParam().database, GetParam().dim, rng);
  const auto expected = naive_nearest(queries, database, false);
  EXPECT_EQ(nearest_neighbors(queries, database), expected);
}

TEST_P(SearchPropertySweep, LeaveOneOutMatchesNaiveLoop) {
  if (GetParam().database < 2) GTEST_SKIP();
  util::Rng rng(GetParam().seed + 2);
  const auto vectors = random_vectors(GetParam().database, GetParam().dim, rng);
  const auto expected = naive_nearest(vectors, vectors, true);
  EXPECT_EQ(loo_nearest_neighbors(vectors), expected);
}

TEST_P(SearchPropertySweep, TileShapeDoesNotChangeResults) {
  util::Rng rng(GetParam().seed + 3);
  const auto queries = random_vectors(GetParam().queries, GetParam().dim, rng);
  const auto database = random_vectors(GetParam().database, GetParam().dim, rng);
  const PackedHVs pq = PackedHVs::pack(queries);
  const PackedHVs pdb = PackedHVs::pack(database);
  const auto expected = nearest_neighbors(pq, pdb);
  const std::pair<std::size_t, std::size_t> tiles[] = {{1, 1}, {1, 3}, {7, 2},
                                                       {1000, 1000}};
  for (const auto& [tq, tdb] : tiles) {
    SearchOptions options;
    options.tile_queries = tq;
    options.tile_database = tdb;
    EXPECT_EQ(nearest_neighbors(pq, pdb, options), expected) << tq << "x" << tdb;
  }
}

TEST_P(SearchPropertySweep, ThreadCountDoesNotChangeResults) {
  util::Rng rng(GetParam().seed + 4);
  const auto vectors = random_vectors(std::max<std::size_t>(GetParam().database, 2),
                                      GetParam().dim, rng);
  parallel::ThreadPool one(1);
  parallel::ThreadPool four(4);
  SearchOptions serial;
  serial.pool = &one;
  SearchOptions wide;
  wide.pool = &four;
  EXPECT_EQ(loo_nearest_neighbors(vectors, serial),
            loo_nearest_neighbors(vectors, wide));
}

TEST_P(SearchPropertySweep, TopKMatchesNaiveSort) {
  util::Rng rng(GetParam().seed + 5);
  const auto queries = random_vectors(GetParam().queries, GetParam().dim, rng);
  const auto database = random_vectors(GetParam().database, GetParam().dim, rng);
  const PackedHVs pq = PackedHVs::pack(queries);
  const PackedHVs pdb = PackedHVs::pack(database);
  for (const std::size_t k : {1u, 3u, 100u}) {
    EXPECT_EQ(top_k_neighbors(pq, pdb, k), naive_top_k(queries, database, k)) << k;
  }
}

TEST_P(SearchPropertySweep, DistanceMatrixMatchesNaiveLoop) {
  util::Rng rng(GetParam().seed + 6);
  const auto queries = random_vectors(GetParam().queries, GetParam().dim, rng);
  const auto database = random_vectors(GetParam().database, GetParam().dim, rng);
  const auto matrix =
      distance_matrix(PackedHVs::pack(queries), PackedHVs::pack(database));
  ASSERT_EQ(matrix.size(), queries.size() * database.size());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    for (std::size_t j = 0; j < database.size(); ++j) {
      EXPECT_EQ(matrix[q * database.size() + j], queries[q].hamming(database[j]));
    }
  }
}

TEST_P(SearchPropertySweep, RotationComposes) {
  // rotated(a).rotated(b) == rotated((a + b) mod n).
  util::Rng rng(GetParam().seed + 7);
  const BitVector v = BitVector::random(GetParam().dim, rng);
  const std::size_t n = GetParam().dim;
  for (const std::size_t a : {std::size_t{1}, std::size_t{63}, n / 2, n - 1}) {
    for (const std::size_t b : {std::size_t{0}, std::size_t{7}, n - 1}) {
      EXPECT_EQ(v.rotated(a).rotated(b), v.rotated((a + b) % n)) << a << "+" << b;
    }
  }
}

TEST_P(SearchPropertySweep, BindPreservesDistance) {
  // d(a ^ c, b ^ c) == d(a, b), also through the packed kernel.
  util::Rng rng(GetParam().seed + 8);
  const BitVector a = BitVector::random(GetParam().dim, rng);
  const BitVector b = BitVector::random(GetParam().dim, rng);
  const BitVector c = BitVector::random(GetParam().dim, rng);
  EXPECT_EQ((a ^ c).hamming(b ^ c), a.hamming(b));
  const std::vector<BitVector> bound = {a ^ c, b ^ c};
  const auto matrix = distance_matrix(PackedHVs::pack(bound), PackedHVs::pack(bound));
  EXPECT_EQ(matrix[1], a.hamming(b));
}

TEST(SearchValidation, RejectsBadInputs) {
  util::Rng rng(1);
  const auto a = random_vectors(3, 128, rng);
  const auto b = random_vectors(3, 256, rng);
  EXPECT_THROW(nearest_neighbors(a, b), std::invalid_argument);
  EXPECT_THROW(nearest_neighbors(a, {}), std::invalid_argument);
  SearchOptions loo;
  loo.exclude_same_index = true;
  const PackedHVs pa = PackedHVs::pack(a);
  const PackedHVs pb4 = PackedHVs::pack(random_vectors(4, 128, rng));
  EXPECT_THROW(nearest_neighbors(pa, pb4, loo), std::invalid_argument);
  EXPECT_THROW(top_k_neighbors(pa, pa, 0), std::invalid_argument);
}

/// Bitwise majority density of m random vectors concentrates around the
/// analytic tie-policy-dependent expectation: 1/2 for odd m, and for even m
/// 1/2 +/- C(m, m/2) / 2^(m+1) depending on where ties land.
TEST(BundlingDensity, StaysInMajorityVoteEnvelope) {
  const std::size_t dim = 10000;
  util::Rng rng(99);
  for (const std::size_t m : {3u, 4u, 5u, 8u, 9u, 16u}) {
    const auto inputs = random_vectors(m, dim, rng);
    double tie_mass = 0.0;  // P[Binomial(m, 1/2) == m/2], even m only
    if (m % 2 == 0) {
      double log_choose = 0.0;
      for (std::size_t i = 1; i <= m / 2; ++i) {
        log_choose += std::log(static_cast<double>(m / 2 + i)) -
                      std::log(static_cast<double>(i));
      }
      tie_mass = std::exp(log_choose - static_cast<double>(m) * std::log(2.0));
    }
    for (const TiePolicy tie : {TiePolicy::kOne, TiePolicy::kZero}) {
      const double expected =
          0.5 + (tie == TiePolicy::kOne ? 0.5 : -0.5) * tie_mass;
      const double tolerance =
          6.0 * std::sqrt(expected * (1.0 - expected) / static_cast<double>(dim));
      EXPECT_NEAR(majority(inputs, tie).density(), expected, tolerance)
          << "m=" << m << " tie=" << static_cast<int>(tie);
    }
  }
}

TEST(BatchEncoderProperty, MatchesRowAtATimeEncoding) {
  const std::size_t dim = 2000;
  RecordEncoder encoder(dim);
  encoder.add_feature(std::make_unique<LevelEncoder>(dim, 0.0, 1.0, 11));
  encoder.add_feature(std::make_unique<LevelEncoder>(dim, -5.0, 5.0, 12));
  encoder.add_feature(std::make_unique<BinaryEncoder>(dim, 13));
  encoder.add_feature(std::make_unique<CategoricalEncoder>(dim, 14));

  util::Rng rng(7);
  const std::size_t rows = 300;
  std::vector<double> values;
  values.reserve(rows * 4);
  for (std::size_t i = 0; i < rows; ++i) {
    values.push_back(rng.uniform());
    values.push_back(rng.uniform(-5.0, 5.0));
    values.push_back(rng.bernoulli(0.5) ? 1.0 : 0.0);
    values.push_back(static_cast<double>(rng.below(6)));
  }

  const BatchEncoder batch(encoder);
  const std::vector<BitVector> encoded = batch.encode_matrix(values, 4);
  ASSERT_EQ(encoded.size(), rows);
  for (std::size_t i = 0; i < rows; ++i) {
    EXPECT_EQ(encoded[i],
              encoder.encode(std::span<const double>(values).subspan(i * 4, 4)))
        << i;
  }

  // Packed output and explicit pools of different widths agree bit-for-bit.
  const auto row_of = [&](std::size_t i, std::vector<double>&) {
    return std::span<const double>(values).subspan(i * 4, 4);
  };
  const PackedHVs packed = batch.encode_packed(rows, row_of);
  for (std::size_t i = 0; i < rows; ++i) EXPECT_EQ(packed.unpack_row(i), encoded[i]);

  parallel::ThreadPool one(1);
  parallel::ThreadPool three(3);
  const BatchEncoder serial(encoder, {&one});
  const BatchEncoder wide(encoder, {&three});
  EXPECT_EQ(serial.encode_rows(rows, row_of), wide.encode_rows(rows, row_of));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, SearchPropertySweep,
    ::testing::Values(SearchCase{64, 1, 1, 1}, SearchCase{100, 3, 17, 2},
                      SearchCase{1000, 10, 64, 3}, SearchCase{4096, 33, 129, 4},
                      SearchCase{10000, 40, 300, 5}, SearchCase{128, 257, 11, 6},
                      SearchCase{20000, 5, 40, 7}));

}  // namespace
}  // namespace hdc::hv
