// obs::WindowedHistogram tests: the streaming p50/p90/p99 estimates are
// pinned against an exact sorted-oracle within the documented one-2x-bucket
// envelope, concurrent recording keeps exact counts/sums (the suite runs
// under TSan via the obs/telemetry labels), stale windows expire, the
// enabled() gate makes record() a no-op, and the registry snapshot / JSON
// export carry the bucket boundaries next to the counts.
#include "obs/quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace hdc::obs {
namespace {

class ObsQuantileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_metrics();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    reset_metrics();
  }
};

/// Exact order statistic oracle: value at the same cumulative-count target
/// the sketch's quantile() scans to.
double exact_quantile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  const double target = q * static_cast<double>(values.size());
  std::size_t index = static_cast<std::size_t>(std::ceil(target));
  if (index > 0) --index;
  return values[std::min(index, values.size() - 1)];
}

/// Log-uniform latencies spanning several buckets, deterministic by seed.
std::vector<double> log_uniform_values(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> values;
  values.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // 10us .. ~10ms: inside the default bucket range, away from overflow.
    const double exponent = -5.0 + 3.0 * rng.uniform();
    values.push_back(std::pow(10.0, exponent));
  }
  return values;
}

TEST_F(ObsQuantileTest, QuantilesWithinOneBucketOfExactOracle) {
  WindowedHistogram histogram("test.oracle", WindowedOptions{});
  const std::vector<double> values = log_uniform_values(5000, 2023);
  for (const double v : values) histogram.record(v);

  const WindowedSample sample = histogram.sample();
  ASSERT_EQ(sample.window_count, values.size());
  for (const double q : {0.5, 0.9, 0.99}) {
    const double exact = exact_quantile(values, q);
    const double estimate = sample.quantile(q);
    // Buckets double, so the estimate and the exact order statistic share a
    // (lower, 2*lower] bucket: the ratio is bounded by one bucket either way.
    EXPECT_GE(estimate, exact / 2.0) << "q=" << q;
    EXPECT_LE(estimate, exact * 2.0) << "q=" << q;
  }
  // The precomputed headline quantiles are the same estimator.
  EXPECT_EQ(sample.p50, sample.quantile(0.50));
  EXPECT_EQ(sample.p90, sample.quantile(0.90));
  EXPECT_EQ(sample.p99, sample.quantile(0.99));
  EXPECT_LE(sample.p50, sample.p90);
  EXPECT_LE(sample.p90, sample.p99);
}

TEST_F(ObsQuantileTest, ConcurrentRecordingKeepsExactTotals) {
  WindowedHistogram histogram("test.concurrent", WindowedOptions{});
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 5000;
  constexpr double kValue = 1e-3;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram] {
      for (std::size_t i = 0; i < kPerThread; ++i) histogram.record(kValue);
    });
  }
  for (std::thread& t : threads) t.join();

  const WindowedSample sample = histogram.sample();
  EXPECT_EQ(sample.total_count, kThreads * kPerThread);
  EXPECT_EQ(sample.window_count, kThreads * kPerThread);
  // The CAS-loop double accumulator linearizes every add, and all adds are
  // the same value, so the sum is the exact sequential fold.
  double expected = 0.0;
  for (std::size_t i = 0; i < kThreads * kPerThread; ++i) expected += kValue;
  EXPECT_EQ(sample.total_sum, expected);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t c : sample.bucket_counts) bucketed += c;
  EXPECT_EQ(bucketed, kThreads * kPerThread);
}

TEST_F(ObsQuantileTest, StaleWindowsExpireFromTheSampleButNotTheLifetime) {
  WindowedOptions options;
  options.window_ns = 1'000'000;  // 1ms windows
  options.windows = 2;
  WindowedHistogram histogram("test.expiry", options);

  histogram.record(1e-3);
  // Sleep long past windows*window_ns so the first record's epoch is
  // unambiguously outside the retained range.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  histogram.record(2e-3);

  const WindowedSample sample = histogram.sample();
  EXPECT_EQ(sample.total_count, 2u);
  EXPECT_EQ(sample.window_count, 1u);  // only the fresh record remains
  EXPECT_DOUBLE_EQ(sample.window_sum, 2e-3);
  EXPECT_DOUBLE_EQ(sample.total_sum, 3e-3);
}

TEST_F(ObsQuantileTest, DisabledRecordingIsANoOp) {
  WindowedHistogram histogram("test.disabled", WindowedOptions{});
  set_enabled(false);
  histogram.record(1e-3);
  const WindowedSample sample = histogram.sample();
  EXPECT_EQ(sample.total_count, 0u);
  EXPECT_EQ(sample.window_count, 0u);
  EXPECT_TRUE(std::isnan(sample.quantile(0.5)));
}

TEST_F(ObsQuantileTest, BoundsAreDoublingEdgesAlignedWithCounts) {
  WindowedOptions options;
  options.min_value = 1e-6;
  options.buckets = 8;
  WindowedHistogram histogram("test.bounds", options);
  histogram.record(5e-7);   // bucket 0: <= min_value
  histogram.record(3e-6);   // interior bucket
  histogram.record(1e3);    // overflow bucket

  const WindowedSample sample = histogram.sample();
  ASSERT_EQ(sample.bounds.size(), options.buckets + 1);
  ASSERT_EQ(sample.bucket_counts.size(), sample.bounds.size() + 1);
  EXPECT_DOUBLE_EQ(sample.bounds.front(), options.min_value);
  for (std::size_t b = 1; b < sample.bounds.size(); ++b) {
    EXPECT_DOUBLE_EQ(sample.bounds[b], 2.0 * sample.bounds[b - 1]) << b;
  }
  EXPECT_EQ(sample.bucket_counts.front(), 1u);  // the 5e-7 record
  EXPECT_EQ(sample.bucket_counts.back(), 1u);   // the overflow record
}

TEST_F(ObsQuantileTest, RegistrySnapshotAndJsonCarryTheSketch) {
  WindowedHistogram& histogram = windowed_histogram("test.registry_windowed");
  for (const double v : log_uniform_values(200, 7)) histogram.record(v);

  const MetricsSnapshot snap = snapshot();
  const WindowedSample* sample = snap.windowed_sample("test.registry_windowed");
  ASSERT_NE(sample, nullptr);
  EXPECT_EQ(sample->total_count, 200u);

  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"windowed\""), std::string::npos);
  EXPECT_NE(json.find("\"test.registry_windowed\""), std::string::npos);
  // Satellite contract: bucket boundaries are exported alongside counts.
  EXPECT_NE(json.find("\"bounds\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_counts\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);

  // reset_metrics zeroes the sketch but keeps the registration.
  reset_metrics();
  const MetricsSnapshot after = snapshot();
  const WindowedSample* cleared = after.windowed_sample("test.registry_windowed");
  ASSERT_NE(cleared, nullptr);
  EXPECT_EQ(cleared->total_count, 0u);
}

TEST_F(ObsQuantileTest, SampleIsSafeWhileRecordersRun) {
  // Scrape-under-load shape for TSan: readers aggregate while writers record.
  WindowedHistogram& histogram = windowed_histogram("test.scrape_load");
  std::vector<std::thread> writers;
  writers.reserve(2);
  for (std::size_t t = 0; t < 2; ++t) {
    writers.emplace_back([&histogram] {
      for (std::size_t i = 0; i < 2000; ++i) {
        histogram.record(1e-4 * static_cast<double>(1 + (i % 7)));
      }
    });
  }
  for (std::size_t s = 0; s < 20; ++s) {
    const WindowedSample sample = histogram.sample();
    EXPECT_LE(sample.window_count, 4000u);
  }
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(histogram.sample().total_count, 4000u);
}

}  // namespace
}  // namespace hdc::obs
