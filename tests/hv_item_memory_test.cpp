#include "hv/item_memory.hpp"

#include <gtest/gtest.h>

namespace hdc::hv {
namespace {

TEST(ItemMemory, SameKeySameVector) {
  ItemMemory mem(1000, 1);
  EXPECT_EQ(mem.get("glucose"), mem.get("glucose"));
  EXPECT_EQ(mem.size(), 1u);
}

TEST(ItemMemory, DistinctKeysQuasiOrthogonal) {
  ItemMemory mem(10000, 2);
  const BitVector& a = mem.get("age");
  const BitVector& b = mem.get("bmi");
  EXPECT_NEAR(a.hamming_fraction(b), 0.5, 0.05);
}

TEST(ItemMemory, DeterministicAcrossInstances) {
  ItemMemory mem1(1000, 7);
  ItemMemory mem2(1000, 7);
  EXPECT_EQ(mem1.get("x"), mem2.get("x"));
}

TEST(ItemMemory, SeedChangesVectors) {
  ItemMemory mem1(1000, 1);
  ItemMemory mem2(1000, 2);
  EXPECT_NE(mem1.get("x"), mem2.get("x"));
}

TEST(ItemMemory, NearestFindsExactMatch) {
  ItemMemory mem(2000, 3);
  const BitVector target = mem.get("insulin");
  mem.get("skin");
  mem.get("dpf");
  EXPECT_EQ(mem.nearest(target), "insulin");
}

TEST(ItemMemory, NearestToleratesNoise) {
  ItemMemory mem(10000, 4);
  BitVector noisy = mem.get("target");
  mem.get("other1");
  mem.get("other2");
  util::Rng rng(5);
  // Flip 20% of bits; still far below the 50% to random vectors.
  noisy = noisy.with_flipped(1000, 1000, rng);
  EXPECT_EQ(mem.nearest(noisy), "target");
}

TEST(ItemMemory, NearestOnEmptyReturnsEmptyKey) {
  ItemMemory mem(100, 6);
  EXPECT_EQ(mem.nearest(BitVector(100)), "");
}

TEST(ItemMemory, StoresManyDistinctItems) {
  ItemMemory mem(1000, 8);
  for (int i = 0; i < 50; ++i) mem.get("key" + std::to_string(i));
  EXPECT_EQ(mem.size(), 50u);
}

}  // namespace
}  // namespace hdc::hv
