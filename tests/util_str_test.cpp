#include "util/str.hpp"

#include <gtest/gtest.h>

namespace hdc::util {
namespace {

TEST(Trim, RemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello  "), "hello");
  EXPECT_EQ(trim("\thello\r\n"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
}

TEST(Trim, EmptyAndAllSpace) {
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Trim, KeepsInnerWhitespace) { EXPECT_EQ(trim(" a b "), "a b"); }

TEST(Split, BasicFields) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Split, KeepsEmptyFields) {
  const auto parts = split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleField) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Split, EmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(ToLower, Basic) {
  EXPECT_EQ(to_lower("HeLLo"), "hello");
  EXPECT_EQ(to_lower("123-ABC"), "123-abc");
}

TEST(ParseDouble, ValidNumbers) {
  EXPECT_DOUBLE_EQ(*parse_double("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*parse_double("-1"), -1.0);
  EXPECT_DOUBLE_EQ(*parse_double("  2.5 "), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("1e3"), 1000.0);
}

TEST(ParseDouble, Invalid) {
  EXPECT_FALSE(parse_double("abc").has_value());
  EXPECT_FALSE(parse_double("1.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("   ").has_value());
}

TEST(ParseInt, ValidNumbers) {
  EXPECT_EQ(*parse_int("42"), 42);
  EXPECT_EQ(*parse_int("-7"), -7);
  EXPECT_EQ(*parse_int(" 0 "), 0);
}

TEST(ParseInt, Invalid) {
  EXPECT_FALSE(parse_int("4.2").has_value());
  EXPECT_FALSE(parse_int("x").has_value());
  EXPECT_FALSE(parse_int("").has_value());
}

TEST(IEquals, CaseInsensitive) {
  EXPECT_TRUE(iequals("Yes", "yes"));
  EXPECT_TRUE(iequals("POSITIVE", "positive"));
  EXPECT_FALSE(iequals("yes", "no"));
  EXPECT_FALSE(iequals("yes", "yess"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(FormatDouble, Decimals) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(1.0, 3), "1.000");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(FormatPercent, Basic) {
  EXPECT_EQ(format_percent(0.796, 1), "79.6%");
  EXPECT_EQ(format_percent(0.5, 0), "50%");
  EXPECT_EQ(format_percent(0.8305, 2), "83.05%");
}

}  // namespace
}  // namespace hdc::util
