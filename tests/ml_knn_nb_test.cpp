#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "ml/knn.hpp"
#include "ml/naive_bayes.hpp"

namespace hdc::ml {
namespace {

TEST(Knn, NearestNeighborMemorisesWithK1) {
  const data::Dataset ds = data::make_two_gaussians(50, 3, 1.0, 61);
  KnnConfig config;
  config.k = 1;
  KnnClassifier model(config);
  model.fit(ds.feature_matrix(), ds.labels());
  EXPECT_DOUBLE_EQ(model.accuracy(ds.feature_matrix(), ds.labels()), 1.0);
}

TEST(Knn, DefaultK5SeparatesBlobs) {
  const data::Dataset ds = data::make_two_gaussians(100, 3, 4.0, 62);
  KnnClassifier model;
  model.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(model.accuracy(ds.feature_matrix(), ds.labels()), 0.98);
}

TEST(Knn, ProbaIsNeighborFraction) {
  Matrix X = {{0.0}, {0.1}, {0.2}, {10.0}, {10.1}};
  Labels y = {1, 1, 0, 0, 0};
  KnnConfig config;
  config.k = 3;
  KnnClassifier model(config);
  model.fit(X, y);
  const std::vector<double> q = {0.05};
  EXPECT_NEAR(model.predict_proba(q), 2.0 / 3.0, 1e-9);
}

TEST(Knn, DistanceWeightingPrefersCloser) {
  Matrix X = {{0.0}, {1.0}, {1.1}};
  Labels y = {1, 0, 0};
  KnnConfig config;
  config.k = 3;
  config.distance_weighted = true;
  KnnClassifier model(config);
  model.fit(X, y);
  // Query at 0.01: the positive neighbour is ~100x closer, so its weight
  // dominates the two farther negatives.
  const std::vector<double> q = {0.01};
  EXPECT_EQ(model.predict(q), 1);
}

TEST(Knn, KLargerThanDataIsClamped) {
  Matrix X = {{0.0}, {1.0}};
  Labels y = {0, 1};
  KnnConfig config;
  config.k = 10;
  KnnClassifier model(config);
  model.fit(X, y);
  const std::vector<double> q = {0.5};
  EXPECT_NEAR(model.predict_proba(q), 0.5, 1e-9);
}

TEST(Knn, ZeroKRejected) {
  KnnConfig config;
  config.k = 0;
  EXPECT_THROW(KnnClassifier{config}, std::invalid_argument);
}

TEST(Knn, NotFittedThrows) {
  const KnnClassifier model;
  const std::vector<double> x = {0.0};
  EXPECT_THROW((void)model.predict_proba(x), std::logic_error);
}

TEST(Knn, ArityMismatchThrows) {
  Matrix X = {{0.0, 1.0}};
  Labels y = {0};
  KnnClassifier model;
  model.fit(X, y);
  const std::vector<double> bad = {0.0};
  EXPECT_THROW((void)model.predict_proba(bad), std::invalid_argument);
}

TEST(NaiveBayes, GaussianSeparatesBlobs) {
  const data::Dataset ds = data::make_two_gaussians(150, 4, 3.0, 63);
  NaiveBayesClassifier model;
  model.fit(ds.feature_matrix(), ds.labels());
  EXPECT_GT(model.accuracy(ds.feature_matrix(), ds.labels()), 0.97);
}

TEST(NaiveBayes, BernoulliOnBinaryFeatures) {
  Matrix X;
  Labels y;
  for (int i = 0; i < 100; ++i) {
    const int label = i % 2;
    X.push_back({static_cast<double>(label), static_cast<double>(i % 3 == 0)});
    y.push_back(label);
  }
  NaiveBayesClassifier model;
  model.fit(X, y);
  EXPECT_DOUBLE_EQ(model.accuracy(X, y), 1.0);
}

TEST(NaiveBayes, MixedFeatureTypes) {
  // Column 0 continuous, column 1 binary: both informative.
  Matrix X;
  Labels y;
  for (int i = 0; i < 100; ++i) {
    const int label = i % 2;
    X.push_back({label == 1 ? 5.0 + 0.01 * i : -5.0 - 0.01 * i,
                 static_cast<double>(label)});
    y.push_back(label);
  }
  NaiveBayesClassifier model;
  model.fit(X, y);
  EXPECT_DOUBLE_EQ(model.accuracy(X, y), 1.0);
}

TEST(NaiveBayes, SmoothingPreventsZeroProbabilities) {
  Matrix X = {{1.0}, {1.0}, {0.0}, {0.0}};
  Labels y = {1, 1, 0, 0};
  NaiveBayesClassifier model;
  model.fit(X, y);
  // An unseen combination must not produce a hard 0/1 posterior.
  const std::vector<double> q = {1.0};
  const double p = model.predict_proba(q);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(p, 1.0);
}

TEST(NaiveBayes, SingleClassTrainingRejected) {
  Matrix X = {{1.0}, {2.0}};
  Labels y = {1, 1};
  NaiveBayesClassifier model;
  EXPECT_THROW(model.fit(X, y), std::invalid_argument);
}

TEST(NaiveBayes, NegativeAlphaRejected) {
  NaiveBayesConfig config;
  config.alpha = -1.0;
  EXPECT_THROW(NaiveBayesClassifier{config}, std::invalid_argument);
}

TEST(NaiveBayes, ForceBernoulliThresholdsContinuous) {
  NaiveBayesConfig config;
  config.force_bernoulli = true;
  Matrix X = {{0.9}, {0.8}, {0.1}, {0.2}};
  Labels y = {1, 1, 0, 0};
  NaiveBayesClassifier model(config);
  model.fit(X, y);
  const std::vector<double> hi = {0.95};
  const std::vector<double> lo = {0.05};
  EXPECT_EQ(model.predict(hi), 1);
  EXPECT_EQ(model.predict(lo), 0);
}

}  // namespace
}  // namespace hdc::ml
