#include "hv/encoders.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

namespace hdc::hv {
namespace {

constexpr std::size_t kDim = 10000;

TEST(LevelEncoder, MinMapsToSeed) {
  const LevelEncoder enc(kDim, 0.0, 100.0, 1);
  EXPECT_EQ(enc.encode(0.0), enc.seed_vector());
}

TEST(LevelEncoder, BelowMinClampsToSeed) {
  const LevelEncoder enc(kDim, 10.0, 100.0, 2);
  EXPECT_EQ(enc.encode(-50.0), enc.seed_vector());
}

TEST(LevelEncoder, MaxIsOrthogonalToMin) {
  const LevelEncoder enc(kDim, 0.0, 1.0, 3);
  const std::size_t d = enc.encode(0.0).hamming(enc.encode(1.0));
  EXPECT_EQ(d, kDim / 2);  // exactly orthogonal by construction
}

TEST(LevelEncoder, AboveMaxClampsToMaxEncoding) {
  const LevelEncoder enc(kDim, 0.0, 1.0, 4);
  EXPECT_EQ(enc.encode(5.0), enc.encode(1.0));
}

TEST(LevelEncoder, DistanceIsLinearInValueDifference) {
  const LevelEncoder enc(kDim, 0.0, 100.0, 5);
  // Nested flips make hamming(enc(a), enc(b)) == |flips(a) - flips(b)|.
  const auto v25 = enc.encode(25.0);
  const auto v50 = enc.encode(50.0);
  const auto v75 = enc.encode(75.0);
  const std::size_t d_25_50 = v25.hamming(v50);
  const std::size_t d_50_75 = v50.hamming(v75);
  const std::size_t d_25_75 = v25.hamming(v75);
  EXPECT_EQ(d_25_50, d_50_75);
  EXPECT_EQ(d_25_75, d_25_50 + d_50_75);
}

TEST(LevelEncoder, NeighborsCloserThanDistantValues) {
  const LevelEncoder enc(kDim, 0.0, 100.0, 6);
  const auto v45 = enc.encode(45.0);
  EXPECT_LT(v45.hamming(enc.encode(50.0)), v45.hamming(enc.encode(70.0)));
}

TEST(LevelEncoder, FlipCountFollowsPaperFormula) {
  const LevelEncoder enc(kDim, 0.0, 200.0, 7);
  // x = k * (t - min) / (2 * (max - min)), quantised to even.
  EXPECT_EQ(enc.flip_count(0.0), 0u);
  EXPECT_EQ(enc.flip_count(200.0), kDim / 2);
  EXPECT_EQ(enc.flip_count(100.0), kDim / 4);
  EXPECT_NEAR(static_cast<double>(enc.flip_count(50.0)),
              static_cast<double>(kDim) * 50.0 / 400.0, 2.0);
}

TEST(LevelEncoder, PreservesDensity) {
  const LevelEncoder enc(kDim, 0.0, 10.0, 8);
  for (const double t : {0.0, 2.5, 5.0, 7.5, 10.0}) {
    EXPECT_EQ(enc.encode(t).popcount(), kDim / 2) << "t=" << t;
  }
}

TEST(LevelEncoder, DegenerateRangeMapsEverythingToSeed) {
  const LevelEncoder enc(kDim, 5.0, 5.0, 9);
  EXPECT_EQ(enc.encode(5.0), enc.seed_vector());
  EXPECT_EQ(enc.encode(123.0), enc.seed_vector());
}

TEST(LevelEncoder, DeterministicPerSeed) {
  const LevelEncoder a(kDim, 0.0, 1.0, 42);
  const LevelEncoder b(kDim, 0.0, 1.0, 42);
  EXPECT_EQ(a.encode(0.37), b.encode(0.37));
}

TEST(LevelEncoder, DifferentSeedsGiveDifferentSpaces) {
  const LevelEncoder a(kDim, 0.0, 1.0, 1);
  const LevelEncoder b(kDim, 0.0, 1.0, 2);
  EXPECT_NEAR(a.encode(0.5).hamming_fraction(b.encode(0.5)), 0.5, 0.05);
}

TEST(LevelEncoder, RejectsBadArguments) {
  EXPECT_THROW(LevelEncoder(0, 0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW(LevelEncoder(101, 0.0, 1.0, 1), std::invalid_argument);  // odd
  EXPECT_THROW(LevelEncoder(kDim, 2.0, 1.0, 1), std::invalid_argument);  // lo > hi
}

TEST(BinaryEncoder, ZeroOneAreOrthogonal) {
  const BinaryEncoder enc(kDim, 10);
  EXPECT_EQ(enc.zero_vector().hamming(enc.one_vector()), kDim / 2);
}

TEST(BinaryEncoder, EncodeThresholdsAtHalf) {
  const BinaryEncoder enc(kDim, 11);
  EXPECT_EQ(enc.encode(0.0), enc.zero_vector());
  EXPECT_EQ(enc.encode(0.4), enc.zero_vector());
  EXPECT_EQ(enc.encode(0.5), enc.one_vector());
  EXPECT_EQ(enc.encode(1.0), enc.one_vector());
}

TEST(BinaryEncoder, BothVectorsBalanced) {
  const BinaryEncoder enc(kDim, 12);
  EXPECT_EQ(enc.zero_vector().popcount(), kDim / 2);
  EXPECT_EQ(enc.one_vector().popcount(), kDim / 2);
}

TEST(BinaryEncoder, RejectsBadDimensions) {
  EXPECT_THROW(BinaryEncoder(0, 1), std::invalid_argument);
  EXPECT_THROW(BinaryEncoder(10, 1), std::invalid_argument);  // not mult of 4
}

TEST(CategoricalEncoder, SameCategorySameVector) {
  const CategoricalEncoder enc(kDim, 13);
  EXPECT_EQ(enc.encode(3.0), enc.encode(3.0));
  EXPECT_EQ(enc.encode(3.2), enc.encode(2.9));  // rounds to 3
}

TEST(CategoricalEncoder, DistinctCategoriesQuasiOrthogonal) {
  const CategoricalEncoder enc(kDim, 14);
  EXPECT_NEAR(enc.encode(0.0).hamming_fraction(enc.encode(1.0)), 0.5, 0.05);
  EXPECT_NEAR(enc.encode(1.0).hamming_fraction(enc.encode(7.0)), 0.5, 0.05);
}

TEST(RecordEncoder, BundlesFeatures) {
  RecordEncoder rec(kDim);
  rec.add_feature(std::make_unique<LevelEncoder>(kDim, 0.0, 1.0, 20));
  rec.add_feature(std::make_unique<LevelEncoder>(kDim, 0.0, 1.0, 21));
  rec.add_feature(std::make_unique<BinaryEncoder>(kDim, 22));
  EXPECT_EQ(rec.feature_count(), 3u);
  const std::vector<double> row = {0.5, 0.7, 1.0};
  const BitVector patient = rec.encode(row);
  EXPECT_EQ(patient.size(), kDim);
  // Patient vector is closer to each of its feature vectors than to an
  // unrelated feature space.
  const BitVector f0 = rec.feature(0).encode(0.5);
  const LevelEncoder outsider(kDim, 0.0, 1.0, 99);
  EXPECT_LT(patient.hamming(f0), patient.hamming(outsider.encode(0.5)));
}

TEST(RecordEncoder, SimilarRowsProduceCloserPatients) {
  RecordEncoder rec(kDim);
  for (int j = 0; j < 5; ++j) {
    rec.add_feature(std::make_unique<LevelEncoder>(kDim, 0.0, 1.0, 30 + j));
  }
  const std::vector<double> base = {0.1, 0.2, 0.3, 0.4, 0.5};
  std::vector<double> near = base;
  near[0] = 0.15;
  std::vector<double> far = {0.9, 0.95, 0.85, 0.99, 0.92};
  const BitVector vb = rec.encode(base);
  EXPECT_LT(vb.hamming(rec.encode(near)), vb.hamming(rec.encode(far)));
}

TEST(RecordEncoder, ArityMismatchThrows) {
  RecordEncoder rec(kDim);
  rec.add_feature(std::make_unique<BinaryEncoder>(kDim, 40));
  const std::vector<double> row = {1.0, 0.0};
  EXPECT_THROW((void)rec.encode(row), std::invalid_argument);
}

TEST(RecordEncoder, NoFeaturesThrows) {
  RecordEncoder rec(kDim);
  const std::vector<double> row;
  EXPECT_THROW((void)rec.encode(row), std::logic_error);
}

TEST(RecordEncoder, MismatchedEncoderDimThrows) {
  RecordEncoder rec(kDim);
  EXPECT_THROW(rec.add_feature(std::make_unique<BinaryEncoder>(kDim / 2, 41)),
               std::invalid_argument);
}

TEST(RecordEncoder, RandomTiePolicyRejected) {
  RecordEncoder rec(kDim, TiePolicy::kRandom);
  rec.add_feature(std::make_unique<BinaryEncoder>(kDim, 42));
  rec.add_feature(std::make_unique<BinaryEncoder>(kDim, 43));
  const std::vector<double> row = {0.0, 1.0};
  EXPECT_THROW((void)rec.encode(row), std::logic_error);
}

// Property sweep: linearity of the level encoder across dimensionalities.
class LevelEncoderDimSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LevelEncoderDimSweep, OrthogonalEndpointsAtAnyDim) {
  const std::size_t dim = GetParam();
  const LevelEncoder enc(dim, -5.0, 5.0, 50);
  EXPECT_EQ(enc.encode(-5.0).hamming(enc.encode(5.0)), dim / 2);
}

TEST_P(LevelEncoderDimSweep, MonotoneDistanceFromSeed) {
  const std::size_t dim = GetParam();
  const LevelEncoder enc(dim, 0.0, 1.0, 51);
  const BitVector seed = enc.encode(0.0);
  std::size_t prev = 0;
  for (const double t : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    const std::size_t d = seed.hamming(enc.encode(t));
    EXPECT_GE(d, prev);
    prev = d;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LevelEncoderDimSweep,
                         ::testing::Values(128, 1000, 10000, 20000));

}  // namespace
}  // namespace hdc::hv
