#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

namespace hdc::util {
namespace {

TEST(ParseLogLevel, AcceptsEveryLevelName) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none"), LogLevel::kOff);
}

TEST(ParseLogLevel, IsCaseInsensitiveAndTrims) {
  EXPECT_EQ(parse_log_level("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("  warn  "), LogLevel::kWarn);
}

TEST(ParseLogLevel, RejectsUnknownNames) {
  EXPECT_EQ(parse_log_level(""), std::nullopt);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level("2"), std::nullopt);
  EXPECT_EQ(parse_log_level("warn error"), std::nullopt);
}

TEST(FormatFields, PlainValuesStayUnquoted) {
  const std::vector<LogField> fields = {{"rows", "768"}, {"path", "out.json"}};
  EXPECT_EQ(format_fields("encoded", fields), "encoded rows=768 path=out.json");
}

TEST(FormatFields, NoFieldsLeavesMessageAlone) {
  EXPECT_EQ(format_fields("plain message", {}), "plain message");
}

TEST(FormatFields, QuotesValuesWithSpacesEqualsOrEmpty) {
  const std::vector<LogField> fields = {
      {"msg", "two words"}, {"expr", "a=b"}, {"empty", ""}};
  EXPECT_EQ(format_fields("m", fields),
            "m msg=\"two words\" expr=\"a=b\" empty=\"\"");
}

TEST(FormatFields, EscapesQuotesAndBackslashes) {
  const std::vector<LogField> fields = {{"path", "C:\\dir \"x\""}};
  EXPECT_EQ(format_fields("m", fields), "m path=\"C:\\\\dir \\\"x\\\"\"");
}

// The env-init tests rely on gtest_discover_tests running each test case in
// its own process: setenv here precedes the binary's first log_level() call.
TEST(LogLevelEnv, HdcLogLevelInitialisesMinimumLevel) {
  ::setenv("HDC_LOG_LEVEL", "debug", 1);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
}

TEST(LogLevelEnv, InvalidValueFallsBackToDefault) {
  ::setenv("HDC_LOG_LEVEL", "shout", 1);
  EXPECT_EQ(log_level(), LogLevel::kWarn);  // compiled-in default
}

TEST(LogLevelEnv, SetLogLevelOverridesEnvironment) {
  ::setenv("HDC_LOG_LEVEL", "debug", 1);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

}  // namespace
}  // namespace hdc::util
