// Concurrency and determinism tests for the serve path (ctest label:
// serve — run under TSan alongside the obs/grid suites). The contract under
// test: classify() and the coalescing submit() queue answer exactly the
// batch-path predictions for every predictor, regardless of client thread
// count, pool width, or how the drain task groups requests; the queue drains
// completely on shutdown; and a bad record fails only its own future.
#include <chrono>
#include <future>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle.hpp"
#include "core/extractor.hpp"
#include "core/hamming_classifier.hpp"
#include "core/serve.hpp"
#include "data/synthetic.hpp"
#include "hv/bit_matrix.hpp"
#include "ml/zoo.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using hdc::core::ModelBundle;
using hdc::core::ServeConfig;
using hdc::core::ServeEngine;

struct ServeWorld {
  hdc::data::Dataset ds;
  std::string artifact;                      // saved bundle
  std::vector<int> hamming_reference;        // batch-path answers
  std::vector<int> logistic_reference;
  std::vector<int> forest_reference;
};

const ServeWorld& world() {
  static const ServeWorld w = [] {
    ServeWorld out;
    out.ds = hdc::data::make_sylhet({40, 50, 11});
    hdc::core::ExtractorConfig config;
    config.dimensions = 384;
    config.seed = 31;
    ModelBundle bundle;
    bundle.extractor.emplace(config);
    bundle.extractor->fit(out.ds);
    const hdc::hv::BitMatrix bits = bundle.extractor->transform_bits(out.ds);
    const std::vector<hdc::hv::BitVector> vectors =
        bundle.extractor->transform(out.ds);
    {
      hdc::core::HammingClassifier hamming;
      hamming.fit(vectors, out.ds.labels());
      for (const hdc::hv::BitVector& v : vectors) {
        out.hamming_reference.push_back(hamming.predict(v));
      }
      bundle.hamming = std::move(hamming);
    }
    for (const char* name : {"Logistic Regression", "Random Forest"}) {
      auto model = hdc::ml::make_model(name, 0.2);
      model->fit_bits(bits, out.ds.labels());
      bundle.models.push_back(std::move(model));
    }
    out.logistic_reference =
        bundle.find_model("Logistic Regression")->predict_all_bits(bits);
    out.forest_reference =
        bundle.find_model("Random Forest")->predict_all_bits(bits);
    std::ostringstream saved;
    hdc::core::save_bundle(saved, bundle);
    out.artifact = saved.str();
    return out;
  }();
  return w;
}

ModelBundle load_world_bundle() {
  std::istringstream in(world().artifact);
  return hdc::core::load_bundle(in);
}

const std::vector<int>& reference_for(const std::string& predictor) {
  if (predictor == "hamming") return world().hamming_reference;
  if (predictor == "Random Forest") return world().forest_reference;
  return world().logistic_reference;
}

std::vector<double> row_copy(const hdc::data::Dataset& ds, std::size_t i) {
  const std::span<const double> row = ds.row(i);
  return {row.begin(), row.end()};
}

TEST(ServeEngineTest, SyncClassifyMatchesBatchPath) {
  for (const char* predictor :
       {"hamming", "Logistic Regression", "Random Forest"}) {
    SCOPED_TRACE(predictor);
    ServeConfig config;
    config.model = predictor;
    ServeEngine engine(load_world_bundle(), config);
    EXPECT_EQ(engine.model_name(), predictor);
    const std::vector<int>& reference = reference_for(predictor);
    for (std::size_t i = 0; i < world().ds.n_rows(); ++i) {
      EXPECT_EQ(engine.classify(world().ds.row(i)), reference[i]) << i;
    }
    EXPECT_EQ(engine.requests_served(), world().ds.n_rows());
  }
}

/// `clients` threads submit interleaved slices of the dataset through the
/// coalescing queue; every future must carry the batch-path answer.
void run_concurrent_clients(const std::string& predictor, std::size_t clients,
                            std::size_t pool_threads, std::size_t max_batch) {
  hdc::parallel::ThreadPool pool(pool_threads);
  ServeConfig config;
  config.model = predictor;
  config.max_batch = max_batch;
  config.pool = &pool;
  ServeEngine engine(load_world_bundle(), config);

  const std::size_t n = world().ds.n_rows();
  std::vector<std::future<int>> futures(n);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < n; i += clients) {
        futures[i] = engine.submit(row_copy(world().ds, i));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<int>& reference = reference_for(predictor);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(futures[i].valid()) << i;
    EXPECT_EQ(futures[i].get(), reference[i]) << i;
  }
  engine.shutdown();
  EXPECT_EQ(engine.requests_served(), n);
}

TEST(ServeEngineTest, CoalescedMatchesSerialOneClient) {
  run_concurrent_clients("Logistic Regression", 1, 1, 16);
}

TEST(ServeEngineTest, CoalescedMatchesSerialTwoClients) {
  run_concurrent_clients("Logistic Regression", 2, 2, 8);
}

TEST(ServeEngineTest, CoalescedMatchesSerialHardwareClients) {
  const std::size_t hw = hdc::parallel::hardware_threads();
  run_concurrent_clients("Logistic Regression", hw, hw, 16);
}

TEST(ServeEngineTest, CoalescedHammingAndForestMatch) {
  run_concurrent_clients("hamming", 3, 2, 8);
  run_concurrent_clients("Random Forest", 3, 2, 8);
}

TEST(ServeEngineTest, MaxBatchOneStillMatches) {
  run_concurrent_clients("Logistic Regression", 2, 2, 1);
}

TEST(ServeEngineTest, QueueDrainsOnShutdown) {
  hdc::parallel::ThreadPool pool(2);
  ServeConfig config;
  config.pool = &pool;
  config.max_batch = 4;
  ServeEngine engine(load_world_bundle(), config);
  const std::size_t n = world().ds.n_rows();
  std::vector<std::future<int>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(engine.submit(row_copy(world().ds, i)));
  }
  engine.shutdown();
  // After shutdown every queued request has been answered — no get() blocks.
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready)
        << i;
    EXPECT_EQ(futures[i].get(), world().hamming_reference[i]) << i;
  }
  EXPECT_EQ(engine.requests_served(), n);
}

TEST(ServeEngineTest, SubmitAfterShutdownThrows) {
  ServeEngine engine(load_world_bundle(), {});
  engine.shutdown();
  EXPECT_THROW((void)engine.submit(row_copy(world().ds, 0)), std::runtime_error);
  // shutdown() is idempotent.
  engine.shutdown();
}

TEST(ServeEngineTest, BadRecordFailsOnlyItsOwnFuture) {
  hdc::parallel::ThreadPool pool(1);
  ServeConfig config;
  config.pool = &pool;
  config.max_batch = 8;
  ServeEngine engine(load_world_bundle(), config);
  // Interleave good rows with wrong-arity rows in the same drain sweeps.
  std::vector<std::future<int>> good;
  std::vector<std::future<int>> bad;
  for (std::size_t i = 0; i < 12; ++i) {
    good.push_back(engine.submit(row_copy(world().ds, i)));
    bad.push_back(engine.submit({1.0, 2.0}));  // dataset arity is 16
  }
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(good[i].get(), world().hamming_reference[i]) << i;
    EXPECT_THROW((void)bad[i].get(), std::invalid_argument) << i;
  }
}

TEST(ServeEngineTest, ClassifyWrongArityThrows) {
  ServeEngine engine(load_world_bundle(), {});
  const std::vector<double> bad = {1.0, 2.0, 3.0};
  EXPECT_THROW((void)engine.classify(bad), std::invalid_argument);
}

TEST(ServeEngineTest, ConstructorRejectsBadConfigs) {
  {
    ModelBundle no_extractor;
    EXPECT_THROW(ServeEngine(std::move(no_extractor), {}), std::invalid_argument);
  }
  {
    ServeConfig config;
    config.model = "No Such Model";
    EXPECT_THROW(ServeEngine(load_world_bundle(), config), std::invalid_argument);
  }
  {
    ServeConfig config;
    config.max_batch = 0;
    EXPECT_THROW(ServeEngine(load_world_bundle(), config), std::invalid_argument);
  }
  {
    // A bundle with an extractor but no predictor at all.
    std::istringstream in(world().artifact);
    ModelBundle bundle = hdc::core::load_bundle(in);
    bundle.hamming.reset();
    bundle.models.clear();
    EXPECT_THROW(ServeEngine(std::move(bundle), {}), std::invalid_argument);
  }
}

TEST(ServeEngineTest, DefaultPredictorPrefersHamming) {
  ServeEngine engine(load_world_bundle(), {});
  EXPECT_EQ(engine.model_name(), "hamming");
  // Without a hamming section the first zoo model answers.
  std::istringstream in(world().artifact);
  ModelBundle bundle = hdc::core::load_bundle(in);
  bundle.hamming.reset();
  ServeEngine fallback(std::move(bundle), {});
  EXPECT_EQ(fallback.model_name(), "Logistic Regression");
}

}  // namespace
