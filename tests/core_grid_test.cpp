#include "core/grid.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "core/fold_cache.hpp"
#include "data/synthetic.hpp"
#include "parallel/thread_pool.hpp"

namespace hdc::core {
namespace {

// Reduced-but-complete grid: both paper datasets, the full nine-model zoo,
// 5-fold CV at dim 1000 — small enough for CI, wide enough that the
// scheduler actually interleaves encode / fit / reduce tasks across
// datasets.

data::Dataset small_pima() {
  data::PimaConfig config;
  config.n_negative = 80;
  config.n_positive = 40;
  config.inject_missing = false;
  config.seed = 11;
  return data::make_pima(config);
}

data::Dataset small_sylhet() { return data::make_sylhet({60, 90, 31}); }

GridConfig fast_grid() {
  GridConfig config;
  config.kfold = 5;
  config.experiment.extractor.dimensions = 1000;
  config.experiment.model_budget = 0.2;
  return config;
}

std::vector<GridDatasetSpec> specs(const data::Dataset& pima,
                                   const data::Dataset& sylhet) {
  return {{"pima", &pima}, {"sylhet", &sylhet}};
}

/// EXPECT_EQ (exact, not approximate) on every metric of two grid results.
void expect_identical(const GridResult& a, const GridResult& b) {
  ASSERT_EQ(a.datasets.size(), b.datasets.size());
  for (std::size_t d = 0; d < a.datasets.size(); ++d) {
    const GridDatasetResult& da = a.datasets[d];
    const GridDatasetResult& db = b.datasets[d];
    EXPECT_EQ(da.dataset, db.dataset);
    ASSERT_EQ(da.models.size(), db.models.size());
    for (std::size_t m = 0; m < da.models.size(); ++m) {
      EXPECT_EQ(da.models[m].model, db.models[m].model);
      EXPECT_EQ(da.models[m].cv.fold_accuracy, db.models[m].cv.fold_accuracy)
          << da.dataset << " / " << da.models[m].model;
      EXPECT_EQ(da.models[m].cv.mean_accuracy, db.models[m].cv.mean_accuracy)
          << da.dataset << " / " << da.models[m].model;
      EXPECT_EQ(da.models[m].cv.stddev_accuracy,
                db.models[m].cv.stddev_accuracy)
          << da.dataset << " / " << da.models[m].model;
    }
    ASSERT_EQ(da.has_nn, db.has_nn);
    if (da.has_nn) {
      EXPECT_EQ(da.nn.mean_test_accuracy, db.nn.mean_test_accuracy);
      EXPECT_EQ(da.nn.stddev_test_accuracy, db.nn.stddev_test_accuracy);
      EXPECT_EQ(da.nn.mean_val_accuracy, db.nn.mean_val_accuracy);
      EXPECT_EQ(da.nn.mean_epochs, db.nn.mean_epochs);
    }
  }
}

TEST(Grid, ScheduledMatchesSerialAtEveryThreadCount) {
  const data::Dataset pima = small_pima();
  const data::Dataset sylhet = small_sylhet();
  const auto ds = specs(pima, sylhet);

  GridConfig config = fast_grid();
  config.scheduled = false;
  const GridResult serial = run_grid(ds, config);

  config.scheduled = true;
  config.threads = 1;
  const GridResult one = run_grid(ds, config);

  config.threads = 2;
  const GridResult two = run_grid(ds, config);

  config.threads = parallel::hardware_threads();
  const GridResult hw = run_grid(ds, config);

  expect_identical(serial, one);
  expect_identical(serial, two);
  expect_identical(serial, hw);
}

TEST(Grid, SerialCellMatchesKfoldDriver) {
  // The serial grid path must be the PR 1-4 driver verbatim: one cell equals
  // a direct kfold_cv_accuracy call with the same inputs.
  const data::Dataset sylhet = small_sylhet();
  GridConfig config = fast_grid();
  config.scheduled = false;
  config.models = {"Logistic Regression"};
  const std::vector<GridDatasetSpec> ds = {{"sylhet", &sylhet}};
  const GridResult grid = run_grid(ds, config);
  const eval::CvResult direct =
      kfold_cv_accuracy(sylhet, "Logistic Regression", config.mode,
                        config.kfold, config.experiment);
  ASSERT_EQ(grid.datasets.size(), 1u);
  ASSERT_EQ(grid.datasets[0].models.size(), 1u);
  EXPECT_EQ(grid.datasets[0].models[0].cv.fold_accuracy, direct.fold_accuracy);
  EXPECT_EQ(grid.datasets[0].models[0].cv.mean_accuracy, direct.mean_accuracy);
  EXPECT_EQ(grid.datasets[0].models[0].cv.stddev_accuracy,
            direct.stddev_accuracy);
}

TEST(Grid, CacheDisabledIsBitIdentical) {
  // HDC_FOLD_CACHE=0 re-encodes per consumer; only wall-clock may differ.
  const data::Dataset pima = small_pima();
  const data::Dataset sylhet = small_sylhet();
  const auto ds = specs(pima, sylhet);
  GridConfig config = fast_grid();
  config.threads = 2;
  config.models = {"KNN", "Logistic Regression", "Decision Tree"};

  const GridResult cached = run_grid(ds, config);
  set_fold_cache_enabled(false);
  const GridResult uncached = run_grid(ds, config);
  reset_fold_cache_enabled();

  expect_identical(cached, uncached);
  EXPECT_GT(cached.stats.encode_tasks, 0u);
  EXPECT_EQ(uncached.stats.encode_tasks, 0u);  // no tasks worth sharing
  EXPECT_EQ(uncached.stats.cache_hits, 0u);
}

TEST(Grid, StatsReflectDagShapeAndDedup) {
  const data::Dataset pima = small_pima();
  const data::Dataset sylhet = small_sylhet();
  const auto ds = specs(pima, sylhet);
  GridConfig config = fast_grid();
  config.threads = 2;
  const GridResult r = run_grid(ds, config);

  const std::size_t n_models = r.datasets[0].models.size();
  EXPECT_EQ(n_models, 9u);  // the paper zoo
  EXPECT_EQ(r.stats.encode_tasks, 2u * config.kfold);
  EXPECT_EQ(r.stats.model_tasks, 2u * n_models * config.kfold);
  EXPECT_EQ(r.stats.reduce_tasks, 2u * n_models);
  EXPECT_EQ(r.stats.tasks_executed, r.stats.encode_tasks +
                                        r.stats.model_tasks +
                                        r.stats.reduce_tasks);
  EXPECT_EQ(r.stats.workers, 2u);

  // Every model task hits the shared encoding: one encode serves ~zoo-many
  // consumers, so the dedup ratio equals the model count.
  EXPECT_EQ(r.stats.cache_hits, r.stats.model_tasks);
  EXPECT_DOUBLE_EQ(r.stats.dedup_ratio, static_cast<double>(n_models));
  // Ref-counted eviction: every entry died when its last consumer released.
  EXPECT_EQ(r.stats.cache_evictions, r.stats.encode_tasks);
  EXPECT_LE(r.stats.cache_peak_entries, r.stats.encode_tasks);
}

TEST(Grid, NnProtocolTaskMatchesSerial) {
  const data::Dataset sylhet = small_sylhet();
  const std::vector<GridDatasetSpec> ds = {{"sylhet", &sylhet}};
  GridConfig config = fast_grid();
  config.models = {"KNN"};
  config.nn_repeats = 1;
  config.nn.max_epochs = 60;
  config.nn.patience = 5;

  config.scheduled = false;
  const GridResult serial = run_grid(ds, config);
  config.scheduled = true;
  config.threads = 2;
  const GridResult sched = run_grid(ds, config);

  ASSERT_TRUE(serial.datasets[0].has_nn);
  expect_identical(serial, sched);
  EXPECT_EQ(sched.stats.nn_tasks, 1u);
}

TEST(Grid, RejectsBadInputs) {
  const data::Dataset sylhet = small_sylhet();
  GridConfig config = fast_grid();
  config.kfold = 1;
  const std::vector<GridDatasetSpec> ds = {{"sylhet", &sylhet}};
  EXPECT_THROW((void)run_grid(ds, config), std::invalid_argument);
  config = fast_grid();
  const std::vector<GridDatasetSpec> null_ds = {{"missing", nullptr}};
  EXPECT_THROW((void)run_grid(null_ds, config), std::invalid_argument);
  // Unknown model names must throw from the calling thread in both modes —
  // scheduled tasks are not allowed to throw, so validation happens eagerly.
  config = fast_grid();
  config.models = {"KNN", "no-such-model"};
  config.scheduled = true;
  config.threads = 2;
  EXPECT_THROW((void)run_grid(ds, config), std::invalid_argument);
  config.scheduled = false;
  EXPECT_THROW((void)run_grid(ds, config), std::invalid_argument);
}

}  // namespace
}  // namespace hdc::core
