#include "nn/layers.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"

namespace hdc::nn {
namespace {

TEST(Dense, ForwardShape) {
  Dense layer(4, 3, 1);
  Matrix input(2, 4, 0.5);
  const Matrix out = layer.forward(input);
  EXPECT_EQ(out.rows(), 2u);
  EXPECT_EQ(out.cols(), 3u);
}

TEST(Dense, InferMatchesForward) {
  Dense layer(5, 2, 2);
  Matrix input(3, 5);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.data()[i] = 0.1 * static_cast<double>(i);
  }
  const Matrix a = layer.forward(input);
  const Matrix b = layer.infer(input);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.data()[i], b.data()[i]);
  }
}

TEST(Dense, WidthMismatchThrows) {
  Dense layer(4, 3, 3);
  Matrix bad(2, 5);
  EXPECT_THROW((void)layer.forward(bad), std::invalid_argument);
  EXPECT_THROW((void)layer.infer(bad), std::invalid_argument);
}

TEST(Dense, ZeroSizeRejected) {
  EXPECT_THROW(Dense(0, 3, 1), std::invalid_argument);
  EXPECT_THROW(Dense(3, 0, 1), std::invalid_argument);
}

TEST(Dense, ParameterCount) {
  Dense layer(10, 4, 4);
  EXPECT_EQ(layer.parameter_count(), 44u);  // 10*4 weights + 4 biases
}

TEST(Dense, InitialisationIsSeededAndBounded) {
  Dense a(100, 10, 7);
  Dense b(100, 10, 7);
  Dense c(100, 10, 8);
  const double limit = std::sqrt(6.0 / 100.0);
  bool differs_from_c = false;
  for (std::size_t i = 0; i < a.weights().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights().data()[i], b.weights().data()[i]);
    EXPECT_LE(std::abs(a.weights().data()[i]), limit);
    differs_from_c |= a.weights().data()[i] != c.weights().data()[i];
  }
  EXPECT_TRUE(differs_from_c);
}

TEST(Relu, ClampsNegatives) {
  Relu relu;
  Matrix input(1, 4);
  input.at(0, 0) = -1.0;
  input.at(0, 1) = 0.0;
  input.at(0, 2) = 2.0;
  input.at(0, 3) = -0.5;
  const Matrix out = relu.forward(input);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(out.at(0, 3), 0.0);
}

TEST(Relu, BackwardMasksGradient) {
  Relu relu;
  Adam opt;
  Matrix input(1, 3);
  input.at(0, 0) = -1.0;
  input.at(0, 1) = 1.0;
  input.at(0, 2) = 2.0;
  (void)relu.forward(input);
  Matrix grad(1, 3, 1.0);
  const Matrix out = relu.backward(grad, opt);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(out.at(0, 2), 1.0);
}

TEST(Sigmoid, MapsToUnitInterval) {
  Sigmoid sig;
  Matrix input(1, 3);
  input.at(0, 0) = -100.0;
  input.at(0, 1) = 0.0;
  input.at(0, 2) = 100.0;
  const Matrix out = sig.forward(input);
  EXPECT_NEAR(out.at(0, 0), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(out.at(0, 1), 0.5);
  EXPECT_NEAR(out.at(0, 2), 1.0, 1e-12);
}

TEST(Sigmoid, BackwardUsesDerivative) {
  Sigmoid sig;
  Adam opt;
  Matrix input(1, 1);
  input.at(0, 0) = 0.0;  // sigmoid = 0.5, derivative = 0.25
  (void)sig.forward(input);
  Matrix grad(1, 1, 2.0);
  const Matrix out = sig.backward(grad, opt);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.5);
}

TEST(Adam, UpdateMovesAgainstGradient) {
  Adam opt(0.1);
  AdamState state;
  double param = 1.0;
  const double grad = 2.0;
  opt.begin_step();
  opt.update(&param, &grad, 1, state);
  EXPECT_LT(param, 1.0);
}

TEST(Adam, StepCounterAdvances) {
  Adam opt;
  EXPECT_EQ(opt.step(), 0u);
  opt.begin_step();
  opt.begin_step();
  EXPECT_EQ(opt.step(), 2u);
}

// Numerical gradient check: analytic backward of Dense+Sigmoid vs finite
// differences through the BCE loss. Verifies the whole chain rule.
TEST(GradientCheck, DenseSigmoidBceMatchesFiniteDifferences) {
  constexpr std::size_t kIn = 3;
  Dense dense(kIn, 1, 11);
  Sigmoid sigmoid;

  Matrix input(2, kIn);
  input.at(0, 0) = 0.4;
  input.at(0, 1) = -0.7;
  input.at(0, 2) = 0.2;
  input.at(1, 0) = -0.1;
  input.at(1, 1) = 0.9;
  input.at(1, 2) = 0.5;
  const std::vector<int> targets = {1, 0};

  const auto loss_at = [&](const Matrix& x) {
    const Matrix h = dense.infer(x);
    const Matrix p = sigmoid.infer(h);
    return binary_cross_entropy_value(p, targets);
  };

  // Analytic input gradient.
  Adam frozen(0.0);  // learning rate 0: parameters unchanged by backward
  Matrix h = dense.forward(input);
  Matrix p = sigmoid.forward(h);
  LossResult loss = binary_cross_entropy(p, targets);
  Matrix grad = sigmoid.backward(loss.grad, frozen);
  grad = dense.backward(grad, frozen);

  // Finite differences. BCE averages over the batch; the layer backward
  // keeps per-sample gradients, so scale by 1/batch for comparison.
  const double eps = 1e-6;
  for (std::size_t i = 0; i < input.rows(); ++i) {
    for (std::size_t j = 0; j < input.cols(); ++j) {
      Matrix plus = input;
      Matrix minus = input;
      plus.at(i, j) += eps;
      minus.at(i, j) -= eps;
      const double numeric = (loss_at(plus) - loss_at(minus)) / (2.0 * eps);
      const double analytic = grad.at(i, j) / static_cast<double>(input.rows());
      EXPECT_NEAR(analytic, numeric, 1e-5) << "at (" << i << "," << j << ")";
    }
  }
}

}  // namespace
}  // namespace hdc::nn
