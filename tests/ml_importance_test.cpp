#include <gtest/gtest.h>

#include "data/preprocess.hpp"
#include "data/synthetic.hpp"
#include "ml/forest.hpp"
#include "ml/tree.hpp"
#include "util/rng.hpp"

namespace hdc::ml {
namespace {

// Feature 0 carries the label; features 1 and 2 are noise.
struct Labelled {
  Matrix X;
  Labels y;
};

Labelled signal_and_noise(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Labelled out;
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(i % 2);
    out.X.push_back({static_cast<double>(label) + 0.1 * rng.normal(),
                     rng.normal(), rng.normal()});
    out.y.push_back(label);
  }
  return out;
}

TEST(TreeImportance, SignalFeatureDominates) {
  const Labelled p = signal_and_noise(200, 1);
  DecisionTree tree;
  tree.fit(p.X, p.y);
  const auto& imp = tree.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], 0.8);
  EXPECT_GT(imp[0], imp[1]);
  EXPECT_GT(imp[0], imp[2]);
}

TEST(TreeImportance, SumsToOneWhenSplitsExist) {
  const Labelled p = signal_and_noise(100, 2);
  DecisionTree tree;
  tree.fit(p.X, p.y);
  double sum = 0.0;
  for (const double v : tree.feature_importances()) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(TreeImportance, PureRootHasZeroImportances) {
  Matrix X = {{1.0, 2.0}, {3.0, 4.0}};
  Labels y = {1, 1};
  DecisionTree tree;
  tree.fit(X, y);
  for (const double v : tree.feature_importances()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ForestImportance, SignalFeatureDominates) {
  const Labelled p = signal_and_noise(200, 3);
  ForestConfig config;
  config.n_trees = 25;
  RandomForest forest(config);
  forest.fit(p.X, p.y);
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 3u);
  EXPECT_GT(imp[0], 0.5);
  EXPECT_GT(imp[0], imp[1] + imp[2]);
}

TEST(ForestImportance, GlucoseTopsPimaRanking) {
  // Domain sanity check mirroring the medical literature: glucose is the
  // most informative Pima feature for tree ensembles.
  const data::Dataset ds =
      data::remove_missing_rows(data::make_pima({300, 160, true, 0.05, 4}));
  ForestConfig config;
  config.n_trees = 40;
  RandomForest forest(config);
  forest.fit(ds.feature_matrix(), ds.labels());
  const auto imp = forest.feature_importances();
  ASSERT_EQ(imp.size(), 8u);
  // Glucose (col 1) must rank in the top two; only age (col 7) is allowed
  // to rival it. Weak features (blood pressure, DPF) must rank clearly
  // below it.
  std::size_t better_than_glucose = 0;
  for (std::size_t j = 0; j < imp.size(); ++j) {
    if (j != 1 && imp[j] > imp[1]) ++better_than_glucose;
  }
  EXPECT_LE(better_than_glucose, 1u);
  EXPECT_GT(imp[1], imp[2]);  // glucose > blood pressure
  EXPECT_GT(imp[1], imp[6]);  // glucose > DPF
}

TEST(ForestImportance, UnfittedThrows) {
  const RandomForest forest;
  EXPECT_THROW((void)forest.feature_importances(), std::logic_error);
}

}  // namespace
}  // namespace hdc::ml
